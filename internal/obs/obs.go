// Package obs is the repository's zero-dependency instrumentation layer:
// counters, gauges, and fixed-bucket histograms with a consistent snapshot
// API, a Registry that names and aggregates them, and the Recorder
// interface the rest of the stack records through.
//
// The design goal is that instrumentation is *free when disabled and inert
// when enabled*: every instrumented component holds a Recorder and guards
// each recording site with a single nil check, and recording never feeds
// back into the computation — detection results, simulated receptions, and
// experiment outputs are bit-identical with or without a Recorder
// attached. All types are safe for concurrent use, so one Registry can
// collect from every worker of a parallel Monte-Carlo campaign.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing (well-behaved callers only add
// non-negative deltas) concurrent-safe counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrent-safe last-value-wins float64 cell.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero for a fresh gauge).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into fixed buckets chosen at
// construction time, alongside exact count, sum, min, and max. Bucket i
// counts observations v with v <= bounds[i]; one implicit overflow bucket
// counts the rest, mirroring the usual cumulative-export convention
// without requiring +Inf in the bounds slice.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // CAS-updated float64 sum
	minBits atomic.Uint64 // CAS-updated; valid only when count > 0
	maxBits atomic.Uint64
}

// DefaultBuckets is a 1–2–5 log series from 1e-6 to 1e6, wide enough for
// the quantities this repo observes (iteration counts, dB margins, energy
// fractions, per-trial seconds) at roughly half-decade resolution.
func DefaultBuckets() []float64 {
	var b []float64
	for exp := -6; exp <= 5; exp++ {
		scale := math.Pow(10, float64(exp))
		b = append(b, 1*scale, 2*scale, 5*scale)
	}
	return append(b, 1e6)
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds. Nil or empty bounds select DefaultBuckets. The bounds slice is
// copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	h := &Histogram{
		bounds:  own,
		buckets: make([]atomic.Int64, len(own)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v — the bucket that counts
	// v <= bounds[i] — falling through to len(bounds), the overflow
	// bucket. DefaultBuckets has 37 bounds, so the search beats the old
	// linear scan for everything past the first few buckets (see
	// BenchmarkHistogramObserve).
	idx := sort.SearchFloat64s(h.bounds, v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
