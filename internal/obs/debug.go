package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar name: expvar.Publish panics on
// a duplicate, and tests (or a tool serving two registries) may call
// PublishExpvar more than once.
var (
	expvarOnce sync.Once
	expvarReg  *Registry
	expvarMu   sync.Mutex
)

// PublishExpvar exposes the registry's live snapshot as the expvar
// variable "crmetrics" (alongside the standard memstats/cmdline vars).
// Later calls rebind the variable to the new registry.
func PublishExpvar(reg *Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("crmetrics", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and expvar (including the registry via PublishExpvar)
// under /debug/vars. It returns the bound address — pass ":0" to pick a
// free port — and serves until the process exits. The server runs on its
// own mux, so nothing leaks into http.DefaultServeMux.
func ServeDebug(addr string, reg *Registry) (string, error) {
	if reg != nil {
		PublishExpvar(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // serves for the process lifetime
	return ln.Addr().String(), nil
}
