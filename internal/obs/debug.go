package obs

import (
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar name: expvar.Publish panics on
// a duplicate, and tests (or a tool serving two registries) may call
// PublishExpvar more than once.
var (
	expvarOnce sync.Once
	expvarReg  *Registry
	expvarMu   sync.Mutex
)

// PublishExpvar exposes the registry's live snapshot as the expvar
// variable "crmetrics" (alongside the standard memstats/cmdline vars).
// Later calls rebind the variable to the new registry.
func PublishExpvar(reg *Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("crmetrics", expvar.Func(func() any {
			expvarMu.Lock()
			r := expvarReg
			expvarMu.Unlock()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
}

// DebugServer is a running debug/metrics HTTP server handle. Close shuts
// it down and releases the listener, so tools and tests can stop it
// deterministically instead of leaking it for the process lifetime.
type DebugServer struct {
	// Addr is the bound address (host:port), useful with a ":0" request.
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the server down immediately (in-flight scrapes are
// dropped, which is fine for a diagnostics endpoint) and frees the
// listener. The listener is closed explicitly: http.Server.Close only
// covers listeners the Serve goroutine has already registered, so a
// fast Close after ServeDebug could otherwise leak the port. Safe to
// call more than once.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	if cerr := s.ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
		err = cerr
	}
	return err
}

// ServeDebug starts an HTTP server on addr exposing the repository's
// debug surface:
//
//   - /debug/pprof/ — net/http/pprof
//   - /debug/vars — expvar, including the registry via PublishExpvar
//   - /metrics — Prometheus text exposition of the registry plus the Go
//     runtime collector (MetricsHandler)
//   - /debug/metrics.json — the live Snapshot as JSON, including window
//     rings (SnapshotHandler; the endpoint crtop polls)
//
// Pass ":0" to pick a free port; the bound address is in the returned
// handle's Addr. The server runs on its own mux (nothing leaks into
// http.DefaultServeMux) until the handle's Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg != nil {
		PublishExpvar(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/metrics.json", SnapshotHandler(reg))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}
