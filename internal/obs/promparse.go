package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample line.
type PromSample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// histogram suffix.
	Name string
	// Labels are the sample's label pairs, in source order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

// PromFamily is one parsed exposition family: the HELP/TYPE header and
// every sample under it.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus parses a Prometheus text-format scrape with the strict
// expectations this repo's writer guarantees: every sample belongs to a
// family that declared # HELP and # TYPE first, names are legal, label
// syntax is well-formed, and values parse. It exists so tests and CI can
// validate /metrics scrapes with the standard library alone.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var order []string
	byName := map[string]*PromFamily{}
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name}
		byName[name] = f
		order = append(order, name)
		return f
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, name)
			}
			f := family(name)
			if f.Help != "" {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
			}
			f.Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, typ, name)
			}
			f := family(name)
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := promFamilyOf(sample.Name, byName)
		f, ok := byName[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q precedes its family's HELP/TYPE", lineNo, sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	families := make([]PromFamily, len(order))
	for i, name := range order {
		families[i] = *byName[name]
	}
	return families, nil
}

// promFamilyOf strips the histogram sample suffixes when the remaining
// base names a declared family.
func promFamilyOf(name string, byName map[string]*PromFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, declared := byName[base]; declared && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

// parsePromSample parses `name{labels} value` (labels optional).
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[brace+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		rest = strings.TrimSpace(rest)
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	// A timestamp may trail the value; the repo's writer never emits one,
	// but accept it to stay a real text-format parser.
	valueField, _, _ := strings.Cut(rest, " ")
	v, err := strconv.ParseFloat(valueField, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", valueField)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string) ([]Label, error) {
	var labels []Label
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label %q has no value", rest)
		}
		key := rest[:eq]
		if !validPromName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %q value is not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		rest = strings.TrimPrefix(rest, ",")
	}
	return labels, nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// CheckPrometheusText parses a scrape and enforces the extra invariants
// this repo's writer promises: families appear in sorted name order,
// every family has both HELP and TYPE and at least one sample, and
// histogram families carry a +Inf bucket plus _sum/_count. CI feeds a
// live /metrics scrape through it (via crtop -check) so a malformed
// exposition fails the build.
func CheckPrometheusText(r io.Reader) error {
	families, err := ParsePrometheus(r)
	if err != nil {
		return err
	}
	if len(families) == 0 {
		return fmt.Errorf("scrape has no metric families")
	}
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	if !sort.StringsAreSorted(names) {
		return fmt.Errorf("families are not name-sorted: %v", names)
	}
	for _, f := range families {
		if f.Help == "" {
			return fmt.Errorf("family %q has no HELP", f.Name)
		}
		if f.Type == "" {
			return fmt.Errorf("family %q has no TYPE", f.Name)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("family %q has no samples", f.Name)
		}
		if f.Type != "histogram" {
			continue
		}
		var inf, sum, count bool
		for _, s := range f.Samples {
			switch s.Name {
			case f.Name + "_sum":
				sum = true
			case f.Name + "_count":
				count = true
			case f.Name + "_bucket":
				for _, l := range s.Labels {
					if l.Key == "le" && l.Value == "+Inf" {
						inf = true
					}
				}
			}
		}
		if !inf || !sum || !count {
			return fmt.Errorf("histogram %q is missing +Inf bucket, _sum, or _count", f.Name)
		}
	}
	return nil
}
