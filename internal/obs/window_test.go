package obs

import (
	"testing"
	"time"
)

// fakeClock is a settable clock for pinning window boundaries.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// windowBase is an arbitrary instant aligned to a whole second.
var windowBase = time.Unix(1_000_000, 0)

func TestWindowRatesOverCompletedWindows(t *testing.T) {
	clk := &fakeClock{now: windowBase}
	w := NewWindow(WindowConfig{Width: time.Second, Windows: 5, Clock: clk.Now})
	// Two completed windows of 10 adds × value 2, then a partial one.
	for win := 0; win < 2; win++ {
		for i := 0; i < 10; i++ {
			w.Add(2)
		}
		clk.Advance(time.Second)
	}
	w.Add(2) // in-progress window, excluded from the rates
	snap := w.Snapshot("m")
	if snap.CountRatePerSecond != 10 {
		t.Fatalf("CountRatePerSecond = %g, want 10", snap.CountRatePerSecond)
	}
	if snap.SumRatePerSecond != 20 {
		t.Fatalf("SumRatePerSecond = %g, want 20", snap.SumRatePerSecond)
	}
	if len(snap.Points) != 3 {
		t.Fatalf("got %d points, want 3 (2 complete + 1 partial): %+v", len(snap.Points), snap.Points)
	}
	// Points are oldest-first with decreasing age.
	for i := 1; i < len(snap.Points); i++ {
		if snap.Points[i].AgeSeconds >= snap.Points[i-1].AgeSeconds {
			t.Fatalf("points not oldest-first: %+v", snap.Points)
		}
	}
	if snap.WidthSeconds != 1 {
		t.Fatalf("WidthSeconds = %g, want 1", snap.WidthSeconds)
	}
}

func TestWindowPartialOnlyRate(t *testing.T) {
	clk := &fakeClock{now: windowBase.Add(500 * time.Millisecond)}
	w := NewWindow(WindowConfig{Width: time.Second, Windows: 5, Clock: clk.Now})
	w.Add(1)
	w.Add(1)
	// Only the in-progress window exists; the rate covers its elapsed half.
	snap := w.Snapshot("m")
	if snap.CountRatePerSecond != 4 {
		t.Fatalf("CountRatePerSecond = %g, want 4 (2 adds over 0.5 s)", snap.CountRatePerSecond)
	}
}

func TestWindowForgetsExpiredSlots(t *testing.T) {
	clk := &fakeClock{now: windowBase}
	w := NewWindow(WindowConfig{Width: time.Second, Windows: 3, Clock: clk.Now})
	w.Add(100) // will expire
	clk.Advance(10 * time.Second)
	w.Add(1)
	snap := w.Snapshot("m")
	if len(snap.Points) != 1 || snap.Points[0].Sum != 1 {
		t.Fatalf("expired window leaked into snapshot: %+v", snap.Points)
	}
	if snap.P99 == nil || *snap.P99 > 1 {
		t.Fatalf("quantiles include the expired value: p99 = %v", snap.P99)
	}
}

func TestWindowMovingQuantiles(t *testing.T) {
	clk := &fakeClock{now: windowBase}
	w := NewWindow(WindowConfig{Width: time.Second, Windows: 10, Clock: clk.Now})
	// 90 fast observations and 10 slow ones across two windows.
	for i := 0; i < 90; i++ {
		w.Add(0.001)
	}
	clk.Advance(time.Second)
	for i := 0; i < 10; i++ {
		w.Add(0.5)
	}
	snap := w.Snapshot("m")
	if snap.P50 == nil || *snap.P50 > 0.01 {
		t.Fatalf("p50 = %v, want ~1 ms", snap.P50)
	}
	if snap.P99 == nil || *snap.P99 < 0.1 {
		t.Fatalf("p99 = %v, want ~0.5 s", snap.P99)
	}
}

func TestRegistryWatchFeedsWindows(t *testing.T) {
	clk := &fakeClock{now: windowBase}
	reg := NewRegistry()
	w := reg.Watch("m", WindowConfig{Width: time.Second, Windows: 4, Clock: clk.Now})
	if again := reg.Watch("m", WindowConfig{Windows: 99}); again != w {
		t.Fatal("re-watching replaced the ring")
	}
	reg.Count("m", 5)
	reg.Count("other", 1) // unwatched: no ring
	clk.Advance(time.Second)

	snap := reg.Snapshot()
	ws, ok := snap.WindowByName("m")
	if !ok {
		t.Fatalf("snapshot has no window for m: %+v", snap.Windows)
	}
	if ws.SumRatePerSecond != 5 {
		t.Fatalf("SumRatePerSecond = %g, want 5", ws.SumRatePerSecond)
	}
	if _, ok := snap.WindowByName("other"); ok {
		t.Fatal("unwatched metric grew a window")
	}
	// Observe feeds the same ring when watching a histogram name.
	reg.Watch("h", WindowConfig{Width: time.Second, Windows: 4, Clock: clk.Now})
	reg.Observe("h", 0.25)
	hs, ok := reg.Snapshot().WindowByName("h")
	if !ok || hs.Points[len(hs.Points)-1].Sum != 0.25 {
		t.Fatalf("observe did not reach the ring: %+v", hs)
	}
}

func TestStripWallTimeDropsWindows(t *testing.T) {
	reg := NewRegistry()
	reg.Watch("m", WindowConfig{})
	reg.Count("m", 3)
	r := NewRunReport("test", 1, 1)
	r.Experiments = []ExperimentReport{{Name: "e", WallSeconds: 0.1, OutputBytes: 1}}
	r.Finish(reg.Snapshot(), time.Millisecond)
	if len(r.Metrics.Windows) == 0 {
		t.Fatal("report lost the window series")
	}
	stripped := r.StripWallTime()
	if len(stripped.Metrics.Windows) != 0 {
		t.Fatalf("StripWallTime kept wall-clock windows: %+v", stripped.Metrics.Windows)
	}
	if stripped.Metrics.CounterValue("m") != 3 {
		t.Fatal("StripWallTime dropped the deterministic counter")
	}
}
