package ranging

import (
	"errors"
	"fmt"
	"math/cmplx"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/locate"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Metric names Session.Run records through its Recorder. The expected /
// found pair is the detection success-rate numerator and denominator
// reportcheck's quality gate compares across runs.
const (
	// MetricRespondersExpected counts responders a Run was asked to
	// range (recorded on every Run, success or failure).
	MetricRespondersExpected = "ranging.responders_expected"
	// MetricRespondersFound counts resolved measurements carrying ground
	// truth — responses detected and attributed to a real responder.
	MetricRespondersFound = "ranging.responders_found"
	// MetricRoundErrors counts Run calls that returned an error.
	MetricRoundErrors = "ranging.round_errors"
	// MetricRounds counts Run calls per outcome ({outcome="ok"} or
	// {outcome="error"}). Recorded only when the Recorder supports
	// labeled series (obs.VecSource).
	MetricRounds = "ranging.rounds"
)

// Measurement is one per-responder ranging outcome.
type Measurement struct {
	// ResponderID is the decoded responder identity, or -1 in anonymous
	// mode (single slot, single shape).
	ResponderID int
	// Distance is the estimated distance in meters.
	Distance float64
	// TrueDistance is the simulation ground truth in meters, valid only
	// when HasTruth is set.
	TrueDistance float64
	// HasTruth reports whether TrueDistance carries actual ground truth.
	// Without it a responder co-located with the initiator (true distance
	// exactly 0) would be indistinguishable from an anonymous measurement
	// that matched no truth.
	HasTruth bool
	// Slot and Shape are the decoded scheme coordinates.
	Slot, Shape int
	// Amplitude is the detected response amplitude (linear).
	Amplitude float64
	// Anchor marks the SS-TWR anchor responder.
	Anchor bool
}

// Error returns the signed ranging error in meters (0 when the ground
// truth is unknown, i.e. anonymous measurements that matched no truth).
// Session.Run sets HasTruth on every matched measurement; a hand-built
// Measurement without HasTruth keeps the legacy convention that a non-zero
// TrueDistance implies known truth.
func (m Measurement) Error() float64 {
	if !m.HasTruth && m.TrueDistance == 0 {
		return 0
	}
	return m.Distance - m.TrueDistance
}

// Result is the outcome of one concurrent-ranging round.
type Result struct {
	// Measurements holds one entry per resolved response, ordered by
	// arrival.
	Measurements []Measurement
	// AnchorDistance is the Eq. 2 SS-TWR distance to the decoded
	// responder.
	AnchorDistance float64
	// AnchorID is the decoded (locked) responder.
	AnchorID int
	// CIR is the estimated channel impulse response magnitude the round
	// observed (one value per accumulator tap).
	CIR []float64
	// CIRSampleInterval is the CIR tap spacing in seconds.
	CIRSampleInterval float64
	// MessagesOnAir is the number of frames the round used (1 INIT +
	// N responses — the paper's N-messages scaling).
	MessagesOnAir int
}

// ErrDecodeFailed reports that the locked responder's payload did not
// survive the interference of the other concurrent responses (only
// possible with Config.ModelDecodeFailures); without the decoded
// timestamps there is no d_TWR anchor and the round yields no distances.
var ErrDecodeFailed = errors.New("ranging: concurrent payload decode failed")

// Run executes one concurrent-ranging round: the initiator broadcasts
// INIT, all responders answer simultaneously after Δ_RESP (+ their RPM
// slot offsets), and the initiator extracts every responder's distance
// from the single aggregated reception.
func (s *Session) Run() (result *Result, err error) {
	seq := s.rounds
	s.rounds++
	defer func() { s.recordRun(result, err) }()
	if s.flight != nil {
		sp := s.flight.Begin(trace.SpanSessionRound, s.runBeginAttrs(seq))
		s.net.SetTraceParent(sp)
		s.detector.SetTraceParent(sp)
		defer func() {
			s.net.SetTraceParent(nil)
			s.detector.SetTraceParent(nil)
			s.endSessionSpan(sp, result, err)
		}()
	}
	round, err := s.net.RunConcurrentRound(s.initiator, s.resps, s.roundCfg)
	if err != nil {
		return nil, err
	}
	if !round.DecodeOK {
		return nil, fmt.Errorf("%w (lock SIR %.1f dB)", ErrDecodeFailed, round.LockSIRdB)
	}
	cir := round.Reception.CIR
	responses, err := s.detector.Detect(cir.Taps, cir.EstimateNoiseRMS())
	if err != nil {
		return nil, err
	}
	if len(responses) == 0 {
		return nil, fmt.Errorf("ranging: no responses detected in the CIR")
	}
	dTWR := round.TWRDistance()
	anchorID := round.DecodedID
	if s.plan.Capacity() == 1 {
		anchorID = 0
	}
	ms, err := s.resolver.Resolve(responses, anchorID, dTWR)
	if err != nil {
		return nil, err
	}
	result = &Result{
		Measurements:      make([]Measurement, 0, len(ms)),
		AnchorDistance:    dTWR,
		AnchorID:          round.DecodedID,
		CIR:               cir.Magnitude(),
		CIRSampleInterval: cir.SampleInterval,
		MessagesOnAir:     1 + len(s.resps),
	}
	for _, m := range ms {
		out := Measurement{
			ResponderID: m.ID,
			Distance:    m.Distance,
			Slot:        m.Slot,
			Shape:       m.Shape,
			Amplitude:   cmplx.Abs(m.Amplitude),
			Anchor:      m.Anchor,
		}
		if truth, ok := round.TrueDistance[m.ID]; ok {
			out.TrueDistance = truth
			out.HasTruth = true
		} else if m.ID == -1 && m.Anchor {
			if truth, ok := round.TrueDistance[round.DecodedID]; ok {
				out.TrueDistance = truth
				out.HasTruth = true
			}
		}
		result.Measurements = append(result.Measurements, out)
	}
	return result, nil
}

// runBeginAttrs builds the session.round begin attributes: the scenario
// seed, the 0-based round counter, the scheme capacity, and the
// ground-truth slot/shape/distance of every responder.
func (s *Session) runBeginAttrs(seq uint64) trace.Attrs {
	truth := make([]any, 0, len(s.resps))
	for _, node := range s.resps {
		slot, shape := 0, 0
		if s.plan.Capacity() > 1 {
			slot, shape, _ = s.plan.Assign(node.ID)
		}
		truth = append(truth, map[string]any{
			trace.AttrID:    node.ID,
			trace.AttrSlot:  slot,
			trace.AttrShape: shape,
			trace.AttrDistM: sim.Distance(s.initiator, node),
		})
	}
	return trace.Attrs{
		trace.AttrSeed:     s.seed,
		trace.AttrRound:    seq,
		trace.AttrCapacity: s.plan.Capacity(),
		trace.AttrTruth:    truth,
	}
}

// endSessionSpan closes a session.round span with the round's outcome.
func (s *Session) endSessionSpan(sp *trace.Span, result *Result, err error) {
	if !sp.Recording() {
		return
	}
	if err != nil {
		sp.EndWith(trace.Attrs{trace.AttrStatus: "error", trace.AttrError: err.Error()})
		return
	}
	ms := make([]any, 0, len(result.Measurements))
	for _, m := range result.Measurements {
		mm := map[string]any{
			trace.AttrID:       m.ResponderID,
			trace.AttrSlot:     m.Slot,
			trace.AttrShape:    m.Shape,
			trace.AttrDistM:    m.Distance,
			trace.AttrHasTruth: m.HasTruth,
			trace.AttrAnchor:   m.Anchor,
		}
		if m.HasTruth {
			mm[trace.AttrTrueM] = m.TrueDistance
		}
		ms = append(ms, mm)
	}
	sp.EndWith(trace.Attrs{
		trace.AttrStatus:       "ok",
		"anchor_id":            result.AnchorID,
		"d_twr_m":              result.AnchorDistance,
		trace.AttrMeasurements: ms,
	})
}

// recordRun emits the per-Run quality counters; free when no recorder is
// attached.
func (s *Session) recordRun(result *Result, err error) {
	if s.rec == nil {
		return
	}
	s.rec.Count(MetricRespondersExpected, int64(len(s.resps)))
	if err != nil {
		s.rec.Count(MetricRoundErrors, 1)
		if s.roundsErr != nil {
			s.roundsErr.Inc()
		}
		return
	}
	if s.roundsOK != nil {
		s.roundsOK.Inc()
	}
	var found int64
	for _, m := range result.Measurements {
		if m.HasTruth {
			found++
		}
	}
	s.rec.Count(MetricRespondersFound, found)
}

// RunTWR performs one classical SS-TWR exchange with the given responder
// and returns the estimated distance — the baseline the paper's Sect. V
// precision experiment uses.
func (s *Session) RunTWR(responderID int) (float64, error) {
	node, err := s.responderNode(responderID)
	if err != nil {
		return 0, err
	}
	return s.net.RunTWRExchange(s.initiator, node, s.ResponseDelay(), s.bank)
}

func (s *Session) responderNode(id int) (*sim.Node, error) {
	for _, n := range s.resps {
		if n.ID == id {
			return n, nil
		}
	}
	return nil, fmt.Errorf("ranging: unknown responder ID %d", id)
}

// MoveInitiator repositions the initiator for subsequent rounds, so a
// mobile node can be tracked across Run calls without rebuilding the
// session (each round realizes a fresh channel for the new geometry).
func (s *Session) MoveInitiator(x, y float64) {
	s.initiator.Pos = geom.Point{X: x, Y: y}
}

// MoveResponder repositions a responder for subsequent rounds.
func (s *Session) MoveResponder(id int, x, y float64) error {
	node, err := s.responderNode(id)
	if err != nil {
		return err
	}
	node.Pos = geom.Point{X: x, Y: y}
	return nil
}

// TrueDistance returns the geometric distance between the initiator and a
// responder.
func (s *Session) TrueDistance(responderID int) (float64, error) {
	node, err := s.responderNode(responderID)
	if err != nil {
		return 0, err
	}
	return sim.Distance(s.initiator, node), nil
}

// Position is a 2-D point in meters.
type Position struct {
	X, Y float64
}

// LocateFrom solves the initiator-side localization problem the paper
// names as future work: given the responder (anchor) positions and the
// measurements of one round, estimate where the measuring node is.
func LocateFrom(measurements []Measurement, anchors map[int]Position) (Position, error) {
	obs := rangeObservations(measurements, anchors)
	res, err := locate.Solve(obs, locate.Config{})
	if err != nil {
		return Position{}, err
	}
	return Position{X: res.Position.X, Y: res.Position.Y}, nil
}

// LocateRobust is LocateFrom with Tukey-biweight outlier rejection: a
// range inflated by non-line-of-sight propagation is down-weighted out of
// the fix instead of dragging it. Requires at least four matched anchors.
func LocateRobust(measurements []Measurement, anchors map[int]Position) (Position, error) {
	obs := rangeObservations(measurements, anchors)
	res, err := locate.SolveRobust(obs, locate.RobustConfig{})
	if err != nil {
		return Position{}, err
	}
	return Position{X: res.Position.X, Y: res.Position.Y}, nil
}

func rangeObservations(measurements []Measurement, anchors map[int]Position) []locate.RangeObservation {
	obs := make([]locate.RangeObservation, 0, len(measurements))
	for _, m := range measurements {
		a, ok := anchors[m.ResponderID]
		if !ok {
			continue
		}
		obs = append(obs, locate.RangeObservation{
			Anchor:   geom.Point{X: a.X, Y: a.Y},
			Distance: m.Distance,
		})
	}
	return obs
}

// ShapeRegister returns the TC_PGDELAY register value backing pulse-shape
// index i of the session's bank, for diagnostics and documentation.
func (s *Session) ShapeRegister(i int) (byte, error) {
	if i < 0 || i >= s.bank.Len() {
		return 0, fmt.Errorf("ranging: shape index %d outside bank of %d", i, s.bank.Len())
	}
	return s.bank.Shape(i).Register, nil
}

// MaxSupportedResponders reports the theoretical capacity of the combined
// scheme for a maximum range (meters) and number of pulse shapes — the
// paper's N_max = N_RPM · N_PS (Sect. VIII).
func MaxSupportedResponders(maxRange float64, numShapes int) (int, error) {
	plan, err := core.NewSlotPlan(maxRange, numShapes)
	if err != nil {
		return 0, err
	}
	return plan.Capacity(), nil
}

// NumPulseShapes is the number of usable DW1000 pulse shapes (Sect. V):
// the TC_PGDELAY register values from 0x93 (the spectral-mask lower limit)
// through 0xFE.
const NumPulseShapes = 108

// TraceEvent is one observable protocol step (frame transmissions,
// receptions, lock and decode decisions) of the simulated exchanges.
type TraceEvent struct {
	// TimeSeconds is the virtual time of the event.
	TimeSeconds float64
	// Node names the acting node.
	Node string
	// Kind classifies the event: tx-init, rx-init, tx-resp, rx-aggregate,
	// decode.
	Kind string
	// Detail is a human-readable elaboration.
	Detail string
}

// String formats the event as a timeline line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12.3f µs  %-10s %-12s %s", e.TimeSeconds*1e6, e.Node, e.Kind, e.Detail)
}

// SetTracer installs a callback receiving every protocol event of
// subsequent Run/RunTWR calls; nil disables tracing.
func (s *Session) SetTracer(fn func(TraceEvent)) {
	if fn == nil {
		s.net.SetTracer(nil)
		return
	}
	s.net.SetTracer(func(e sim.TraceEvent) {
		fn(TraceEvent{TimeSeconds: e.Time, Node: e.Node, Kind: e.Kind, Detail: e.Detail})
	})
}

// SetRecorder attaches a metrics recorder to the session's detector and
// simulated network; nil detaches both. Recording is observation-only —
// results are bit-identical with or without a recorder — and free when
// disabled (the hot paths test a single nil pointer). obs.Registry
// satisfies the interface and is safe for concurrent use across sessions.
func (s *Session) SetRecorder(rec obs.Recorder) {
	s.rec = rec
	s.roundsOK, s.roundsErr = nil, nil
	if vs, ok := rec.(obs.VecSource); ok {
		vec := vs.CounterVec(MetricRounds, "outcome")
		s.roundsOK = vec.With("ok")
		s.roundsErr = vec.With("error")
	}
	s.detector.SetRecorder(rec)
	s.net.SetRecorder(rec)
}

// SetFlightRecorder attaches the decision-level flight recorder
// (internal/obs/trace) to the session, its network, and its detector;
// nil detaches all three. Every subsequent Run becomes a session.round
// span — carrying the scenario seed and the per-responder ground truth
// (RPM slot, pulse-shape index, true distance) — with the sim round and
// each detection's per-round search-and-subtract decisions nested under
// it. Like SetRecorder this is observation-only and free when disabled.
func (s *Session) SetFlightRecorder(tr *trace.Tracer) {
	s.flight = tr
	s.net.SetFlightRecorder(tr)
	s.detector.SetFlightRecorder(tr)
}
