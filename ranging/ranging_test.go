package ranging

import (
	"math"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
)

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestScenarioValidation(t *testing.T) {
	if _, err := NewScenario(Config{}).Build(); err == nil {
		t.Error("empty scenario accepted")
	}
	sc := NewScenario(Config{})
	sc.SetInitiator(1, 1)
	if _, err := sc.Build(); err == nil {
		t.Error("scenario without responders accepted")
	}
	sc.AddResponder(0, 3, 1)
	sc.AddResponder(0, 4, 1)
	if _, err := sc.Build(); err == nil {
		t.Error("duplicate responder ID accepted")
	}
	bad := NewScenario(Config{Environment: "moonbase"})
	bad.SetInitiator(1, 1)
	bad.AddResponder(0, 3, 1)
	if _, err := bad.Build(); err == nil {
		t.Error("unknown environment accepted")
	}
	over := NewScenario(Config{MaxRange: 75, NumShapes: 3})
	over.SetInitiator(1, 1)
	over.AddResponder(50, 3, 1) // capacity is 12
	if _, err := over.Build(); err == nil {
		t.Error("responder ID beyond capacity accepted")
	}
}

func TestQuickstartHallwayRound(t *testing.T) {
	sc := NewScenario(Config{
		Environment:      EnvHallway,
		Seed:             1,
		IdealTransceiver: true,
		// Anonymous ranging cannot tell responses from multipath peaks
		// (the paper's challenge IV), so cap detection at the known N−1.
		Detector: DetectorOptions{MaxResponses: 3},
	})
	sc.SetInitiator(2, 1.2)
	sc.AddResponder(0, 5, 1.2)
	sc.AddResponder(1, 8, 1.2)
	sc.AddResponder(2, 12, 1.2)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesOnAir != 4 {
		t.Fatalf("messages %d, want N = 4", res.MessagesOnAir)
	}
	if !closeTo(res.AnchorDistance, 3, 0.05) {
		t.Fatalf("anchor distance %g, want 3", res.AnchorDistance)
	}
	if len(res.Measurements) < 3 {
		t.Fatalf("%d measurements, want ≥ 3", len(res.Measurements))
	}
	// Anonymous mode: distances in arrival order are 3, 6, 10 m.
	want := []float64{3, 6, 10}
	for i, w := range want {
		m := res.Measurements[i]
		if m.ResponderID != -1 {
			t.Fatalf("anonymous round assigned ID %d", m.ResponderID)
		}
		if !closeTo(m.Distance, w, 0.2) {
			t.Fatalf("measurement %d: %g, want %g", i, m.Distance, w)
		}
	}
	if len(res.CIR) == 0 || res.CIRSampleInterval <= 0 {
		t.Fatal("CIR missing from result")
	}
}

func TestIdentifiedRoundWithShapesAndRPM(t *testing.T) {
	sc := NewScenario(Config{
		Environment:      EnvHallway,
		Seed:             5,
		MaxRange:         75,
		NumShapes:        3,
		IdealTransceiver: true,
	})
	sc.SetInitiator(1, 1.2)
	truth := map[int]float64{}
	for id := 0; id < 6; id++ {
		d := 2.5 + 1.5*float64(id)
		sc.AddResponder(id, 1+d, 1.2)
		truth[id] = d
	}
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if session.Capacity() != 12 {
		t.Fatalf("capacity %d, want 12", session.Capacity())
	}
	if p := session.Plan(); p.NumSlots != 4 || p.NumShapes != 3 {
		t.Fatalf("plan %dx%d, want 4x3", p.NumSlots, p.NumShapes)
	}
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]Measurement{}
	for _, m := range res.Measurements {
		found[m.ResponderID] = m
	}
	for id, want := range truth {
		m, ok := found[id]
		if !ok {
			t.Errorf("responder %d missing", id)
			continue
		}
		if !closeTo(m.Distance, want, 0.3) {
			t.Errorf("responder %d: %g, want %g", id, m.Distance, want)
		}
		if !closeTo(m.TrueDistance, want, 1e-9) {
			t.Errorf("responder %d: ground truth %g", id, m.TrueDistance)
		}
	}
}

func TestRunTWRPrecision(t *testing.T) {
	sc := NewScenario(Config{Environment: EnvOffice, Seed: 9})
	sc.SetInitiator(1, 1)
	sc.AddResponder(0, 4, 1)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	const n = 40
	for i := 0; i < n; i++ {
		d, err := session.RunTWR(0)
		if err != nil {
			t.Fatal(err)
		}
		e := d - 3
		sum += e
		sumSq += e * e
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || std > 0.06 {
		t.Fatalf("TWR error mean %g std %g", mean, std)
	}
	if _, err := session.RunTWR(42); err == nil {
		t.Fatal("unknown responder accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		sc := NewScenario(Config{Environment: EnvHallway, Seed: 77})
		sc.SetInitiator(2, 1.2)
		sc.AddResponder(0, 6, 1.2)
		sc.AddResponder(1, 9, 1.2)
		s, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.Measurements) != len(b.Measurements) {
		t.Fatal("measurement counts differ across identical seeds")
	}
	for i := range a.Measurements {
		if a.Measurements[i] != b.Measurements[i] {
			t.Fatalf("measurement %d differs: %+v vs %+v", i, a.Measurements[i], b.Measurements[i])
		}
	}
}

func TestLocateFrom(t *testing.T) {
	anchors := map[int]Position{
		0: {0, 0}, 1: {10, 0}, 2: {10, 8}, 3: {0, 8},
	}
	truth := Position{4, 3}
	var ms []Measurement
	for id, a := range anchors {
		d := math.Hypot(truth.X-a.X, truth.Y-a.Y)
		ms = append(ms, Measurement{ResponderID: id, Distance: d})
	}
	pos, err := LocateFrom(ms, anchors)
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(pos.X-truth.X, pos.Y-truth.Y) > 1e-6 {
		t.Fatalf("position %+v, want %+v", pos, truth)
	}
	// Too few matched anchors.
	if _, err := LocateFrom(ms[:2], anchors); err == nil {
		t.Fatal("two ranges accepted")
	}
}

func TestMaxSupportedResponders(t *testing.T) {
	got, err := MaxSupportedResponders(75, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("capacity %d, want 12", got)
	}
	if _, err := MaxSupportedResponders(-5, 3); err == nil {
		t.Fatal("bad range accepted")
	}
	if NumPulseShapes != 108 {
		t.Fatalf("NumPulseShapes = %d", NumPulseShapes)
	}
}

func TestShapeRegister(t *testing.T) {
	sc := NewScenario(Config{NumShapes: 3})
	sc.SetInitiator(1, 1)
	sc.AddResponder(0, 4, 1)
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := s.ShapeRegister(0)
	if err != nil || reg != 0x93 {
		t.Fatalf("shape 0 register 0x%02X, err %v", reg, err)
	}
	if _, err := s.ShapeRegister(9); err == nil {
		t.Fatal("out-of-range shape accepted")
	}
}

func TestMeasurementError(t *testing.T) {
	m := Measurement{Distance: 5.2, TrueDistance: 5}
	if !closeTo(m.Error(), 0.2, 1e-12) {
		t.Fatalf("error %g", m.Error())
	}
	if (Measurement{Distance: 3}).Error() != 0 {
		t.Fatal("unknown truth must yield zero error")
	}
	// A responder co-located with the initiator has TrueDistance 0 but
	// known ground truth: the error must not silently collapse to 0.
	co := Measurement{Distance: 0.4, TrueDistance: 0, HasTruth: true}
	if !closeTo(co.Error(), 0.4, 1e-12) {
		t.Fatalf("co-located error %g, want 0.4", co.Error())
	}
}

func TestRunSetsHasTruth(t *testing.T) {
	sc := NewScenario(Config{Environment: EnvHallway, Seed: 31})
	sc.SetInitiator(2, 1.2)
	sc.AddResponder(0, 6, 1.2)
	sc.AddResponder(1, 9, 1.2)
	s, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Measurements {
		if m.ResponderID >= 0 && !m.HasTruth {
			t.Errorf("responder %d: matched measurement without HasTruth", m.ResponderID)
		}
	}
}

// TestDetectorModePassthrough: the Detector Mode/Workers options must
// reach the core detector, and every mode must measure the same
// distances on the same scenario.
func TestDetectorModePassthrough(t *testing.T) {
	build := func(mode core.DetectorMode, workers int) *Result {
		sc := NewScenario(Config{
			Environment:      EnvHallway,
			Seed:             7,
			IdealTransceiver: true,
			Detector:         DetectorOptions{MaxResponses: 2, Mode: mode, Workers: workers},
		})
		sc.SetInitiator(2, 1.2)
		sc.AddResponder(0, 5, 1.2)
		sc.AddResponder(1, 8, 1.2)
		session, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := session.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := build(core.ModeReference, 1)
	if len(ref.Measurements) < 2 {
		t.Fatalf("%d measurements, want ≥ 2", len(ref.Measurements))
	}
	for _, mode := range []core.DetectorMode{core.ModeAuto, core.ModeSpectral} {
		got := build(mode, 2)
		if len(got.Measurements) != len(ref.Measurements) {
			t.Fatalf("mode %d: %d measurements, reference %d", mode, len(got.Measurements), len(ref.Measurements))
		}
		for i, m := range got.Measurements {
			if !closeTo(m.Distance, ref.Measurements[i].Distance, 1e-3) {
				t.Fatalf("mode %d measurement %d: %g, reference %g",
					mode, i, m.Distance, ref.Measurements[i].Distance)
			}
		}
	}
	if _, err := NewScenario(Config{}).Build(); err == nil {
		t.Error("sanity: empty scenario accepted")
	}
	// Invalid detector options must surface from Build.
	bad := NewScenario(Config{Detector: DetectorOptions{Workers: -1}})
	bad.SetInitiator(1, 1)
	bad.AddResponder(0, 3, 1)
	if _, err := bad.Build(); err == nil {
		t.Error("negative Workers accepted")
	}
}
