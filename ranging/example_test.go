package ranging_test

import (
	"fmt"
	"log"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

// The basic flow: place nodes, build the session, run one round.
func ExampleScenario() {
	sc := ranging.NewScenario(ranging.Config{
		Environment:      ranging.EnvHallway,
		Seed:             42,
		NumShapes:        3,
		IdealTransceiver: true,
	})
	sc.SetInitiator(2.0, 0.9)
	sc.AddResponder(0, 5.0, 0.9)
	sc.AddResponder(1, 8.0, 0.9)
	sc.AddResponder(2, 12.0, 0.9)

	session, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d messages for %d responders\n", result.MessagesOnAir, 3)
	for _, m := range result.Measurements {
		fmt.Printf("responder %d: %.1f m\n", m.ResponderID, m.Distance)
	}
	// Output:
	// 4 messages for 3 responders
	// responder 0: 3.0 m
	// responder 1: 6.0 m
	// responder 2: 10.0 m
}

// The combined scheme capacity follows Sect. VIII of the paper.
func ExampleMaxSupportedResponders() {
	for _, r := range []float64{75, 20} {
		n, err := ranging.MaxSupportedResponders(r, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("r_max %.0f m, 3 shapes: %d responders\n", r, n)
	}
	// Output:
	// r_max 75 m, 3 shapes: 12 responders
	// r_max 20 m, 3 shapes: 45 responders
}

// Scenarios can be loaded from JSON configuration.
func ExampleLoadScenario() {
	const config = `{
	  "config": {"environment": "hallway", "seed": 42, "numShapes": 3,
	             "idealTransceiver": true},
	  "initiator": {"x": 2.0, "y": 0.9},
	  "responders": [
	    {"id": 0, "x": 5.0, "y": 0.9},
	    {"id": 1, "x": 8.0, "y": 0.9}
	  ]
	}`
	sc, err := ranging.LoadScenario(strings.NewReader(config))
	if err != nil {
		log.Fatal(err)
	}
	session, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anchor at %.1f m\n", result.AnchorDistance)
	// Output:
	// anchor at 3.0 m
}
