package ranging

import (
	"errors"
	"math"
	"testing"
)

func TestDriftCompensationInPublicAPI(t *testing.T) {
	run := func(compensate bool) float64 {
		sc := NewScenario(Config{
			Environment:       EnvOffice,
			Seed:              61,
			ClockOffsetPPM:    8,
			DriftCompensation: compensate,
			IdealTransceiver:  true,
			Detector:          DetectorOptions{MaxResponses: 1},
		})
		sc.SetInitiator(1, 1)
		sc.AddResponder(0, 6, 1)
		session, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const rounds = 25
		for i := 0; i < rounds; i++ {
			res, err := session.Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += res.AnchorDistance - 5
		}
		return sum / rounds
	}
	biased := run(false)
	compensated := run(true)
	// The two nodes draw random offsets within ±8 ppm; the realized
	// relative offset at this seed biases SS-TWR by ~5 cm.
	if math.Abs(biased) < 0.04 {
		t.Fatalf("expected a visible drift bias, got %g m", biased)
	}
	if math.Abs(compensated) > 0.03 {
		t.Fatalf("compensated bias %g m", compensated)
	}
	if math.Abs(compensated) >= math.Abs(biased) {
		t.Fatal("compensation did not help")
	}
}

func TestDecodeFailureSurfacesAsError(t *testing.T) {
	// Nine equal-distance responders in free space: the locked payload
	// drowns in interference.
	sc := NewScenario(Config{
		Environment:         EnvFreeSpace,
		Seed:                63,
		MaxRange:            75,
		NumShapes:           3,
		ModelDecodeFailures: true,
	})
	sc.SetInitiator(0, 0)
	for id := 0; id < 9; id++ {
		angle := float64(id) * 2 * math.Pi / 9
		sc.AddResponder(id, 6*math.Cos(angle), 6*math.Sin(angle))
	}
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = session.Run()
	if !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("want ErrDecodeFailed, got %v", err)
	}
}

func TestDecodeSucceedsWithDominantAnchor(t *testing.T) {
	sc := NewScenario(Config{
		Environment:         EnvHallway,
		Seed:                65,
		NumShapes:           3,
		ModelDecodeFailures: true,
	})
	sc.SetInitiator(2, 0.9)
	sc.AddResponder(0, 5, 0.9)
	sc.AddResponder(1, 10, 0.9)
	sc.AddResponder(2, 14, 0.9)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Run(); err != nil {
		t.Fatalf("dominant-anchor round failed to decode: %v", err)
	}
}

func TestLocateRobustAgainstNLOSRange(t *testing.T) {
	anchors := map[int]Position{
		0: {0, 0}, 1: {10, 0}, 2: {10, 8}, 3: {0, 8}, 4: {5, 0},
	}
	truth := Position{4, 3}
	var ms []Measurement
	for id, a := range anchors {
		d := math.Hypot(truth.X-a.X, truth.Y-a.Y)
		if id == 4 {
			d += 2.5 // NLOS-inflated range
		}
		ms = append(ms, Measurement{ResponderID: id, Distance: d})
	}
	plain, err := LocateFrom(ms, anchors)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := LocateRobust(ms, anchors)
	if err != nil {
		t.Fatal(err)
	}
	plainErr := math.Hypot(plain.X-truth.X, plain.Y-truth.Y)
	robustErr := math.Hypot(robust.X-truth.X, robust.Y-truth.Y)
	if robustErr > 0.05 {
		t.Fatalf("robust fix error %g m", robustErr)
	}
	if robustErr >= plainErr {
		t.Fatalf("robust (%g) not better than plain (%g)", robustErr, plainErr)
	}
}

func TestSessionTracer(t *testing.T) {
	sc := NewScenario(Config{Environment: EnvHallway, Seed: 71,
		Detector: DetectorOptions{MaxResponses: 1}})
	sc.SetInitiator(1, 0.9)
	sc.AddResponder(0, 4, 0.9)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	session.SetTracer(func(e TraceEvent) { events = append(events, e) })
	if _, err := session.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("only %d trace events", len(events))
	}
	if events[0].Kind != "tx-init" {
		t.Fatalf("first event %+v", events[0])
	}
	for _, e := range events {
		if e.String() == "" {
			t.Fatal("empty event rendering")
		}
	}
	session.SetTracer(nil)
	n := len(events)
	if _, err := session.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatal("tracer fired after removal")
	}
}
