// Package ranging is the public API of the concurrent-ranging library: a
// faithful, simulation-backed implementation of "Concurrent Ranging with
// Ultra-Wideband Radios: From Experimental Evidence to a Practical
// Solution" (Großwindhager et al., ICDCS 2018).
//
// A Scenario places an initiator and responders in a propagation
// environment; building it yields a Session whose Run executes one
// concurrent-ranging round — a single INIT broadcast answered by all
// responders simultaneously — and returns one distance measurement per
// responder, each attributed to its responder ID through the paper's
// pulse-shaping and response-position-modulation scheme.
//
// Minimal use:
//
//	sc := ranging.NewScenario(ranging.Config{Environment: "hallway", Seed: 1})
//	sc.SetInitiator(2, 1.2)
//	sc.AddResponder(0, 5, 1.2)
//	sc.AddResponder(1, 8, 1.2)
//	sc.AddResponder(2, 12, 1.2)
//	session, err := sc.Build()
//	// handle err
//	result, err := session.Run()
//	// handle err
//	for _, m := range result.Measurements {
//	    fmt.Printf("responder %d: %.2f m\n", m.ResponderID, m.Distance)
//	}
package ranging

import (
	"fmt"

	"github.com/uwb-sim/concurrent-ranging/internal/airtime"
	"github.com/uwb-sim/concurrent-ranging/internal/channel"
	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/dw1000"
	"github.com/uwb-sim/concurrent-ranging/internal/geom"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
)

// Environments selectable in Config.
const (
	EnvFreeSpace  = "free-space"
	EnvHallway    = "hallway"
	EnvOffice     = "office"
	EnvIndustrial = "industrial"
)

// Config describes a deployment.
type Config struct {
	// Environment is one of the Env… preset names. Empty selects the
	// office preset.
	Environment string
	// Seed makes the simulation deterministic; equal seeds reproduce
	// bit-identical runs.
	Seed uint64
	// MaxRange enables response position modulation (Sect. VII): the CIR
	// is divided into slots sized for this communication range in meters.
	// Zero disables RPM (single slot).
	MaxRange float64
	// NumShapes is the number of pulse shapes used for responder
	// identification (Sect. V). Zero or one selects anonymous ranging
	// with the default pulse.
	NumShapes int
	// ResponseDelay overrides Δ_RESP (seconds). Zero selects the paper's
	// 290 µs.
	ResponseDelay float64
	// IdealTransceiver disables the DW1000's 8 ns delayed-TX truncation,
	// modeling the next-generation hardware the paper anticipates
	// (Sect. III). Keep false for faithful DW1000 behavior.
	IdealTransceiver bool
	// ClockOffsetPPM, when non-zero, draws each node's crystal offset
	// uniformly from ±this many ppm. Zero keeps ideal crystals.
	ClockOffsetPPM float64
	// DriftCompensation corrects the SS-TWR anchor distance with the
	// initiator's carrier-frequency-offset estimate of the decoded
	// responder's clock rate, removing the c·Δ_RESP·e/2 crystal-offset
	// bias. Meaningful together with ClockOffsetPPM.
	DriftCompensation bool
	// ModelDecodeFailures enables the payload capture model: with many
	// responders at comparable power the decoded payload can be lost to
	// interference, in which case Run returns ErrDecodeFailed. Off by
	// default (the paper's working assumption).
	ModelDecodeFailures bool
	// Detector overrides the response-detection settings; the zero value
	// uses the defaults of Sect. IV (4× up-sampling, automatic stop at
	// 6× the noise floor).
	Detector DetectorOptions
	// Obstacles adds attenuating surfaces to the environment, for
	// studying attenuated-LOS and NLOS situations (the paper's stated
	// future work).
	Obstacles []Obstacle
}

// Obstacle is a wall-like surface that attenuates rays crossing it.
type Obstacle struct {
	// X1, Y1, X2, Y2 are the segment endpoints in meters.
	X1, Y1, X2, Y2 float64
	// LossDB is the power loss per crossing in dB.
	LossDB float64
}

// DetectorOptions exposes the search-and-subtract knobs.
type DetectorOptions struct {
	// Upsample is the FFT up-sampling factor (default 4).
	Upsample int
	// MaxResponses caps detection; 0 = automatic (recommended).
	MaxResponses int
	// ThresholdFactor is the stop threshold in noise-RMS multiples
	// (default 6).
	ThresholdFactor float64
	// Mode selects the detector search path: core.ModeAuto (default)
	// picks the spectral fast path for large template banks and the
	// exact reference path otherwise; core.ModeSpectral and
	// core.ModeReference force one.
	Mode core.DetectorMode
	// Workers bounds the parallel template fan-out per detection
	// (0 = automatic: GOMAXPROCS for large banks, serial otherwise).
	Workers int
}

// Scenario is a mutable deployment description.
type Scenario struct {
	cfg        Config
	initiator  *nodeSpec
	responders []nodeSpec
}

type nodeSpec struct {
	id   int
	x, y float64
}

// NewScenario starts an empty scenario.
func NewScenario(cfg Config) *Scenario {
	return &Scenario{cfg: cfg}
}

// SetInitiator places the initiator at (x, y) meters.
func (s *Scenario) SetInitiator(x, y float64) *Scenario {
	s.initiator = &nodeSpec{id: -1, x: x, y: y}
	return s
}

// AddResponder places a responder with the given ID at (x, y) meters.
// With pulse shaping and RPM enabled, the ID determines the responder's
// slot and pulse shape; it must be unique and below the scheme capacity.
func (s *Scenario) AddResponder(id int, x, y float64) *Scenario {
	s.responders = append(s.responders, nodeSpec{id: id, x: x, y: y})
	return s
}

// Session is a built, runnable deployment.
type Session struct {
	net       *sim.Network
	initiator *sim.Node
	resps     []*sim.Node
	plan      core.SlotPlan
	bank      *pulse.Bank
	detector  *core.Detector
	resolver  *core.Resolver
	roundCfg  sim.RoundConfig

	// Instrumentation (all optional): the metrics recorder, the
	// decision-level flight recorder, the scenario seed the trace spans
	// carry, and the 0-based Run counter.
	rec obs.Recorder
	// roundsOK/roundsErr are pre-resolved labeled round-outcome counters
	// (nil unless rec supports labeled series); see MetricRounds.
	roundsOK  *obs.Counter
	roundsErr *obs.Counter
	flight    *trace.Tracer
	seed      uint64
	rounds    uint64
}

// Build validates the scenario and constructs the simulation.
func (s *Scenario) Build() (*Session, error) {
	if s.initiator == nil {
		return nil, fmt.Errorf("ranging: scenario has no initiator")
	}
	if len(s.responders) == 0 {
		return nil, fmt.Errorf("ranging: scenario has no responders")
	}
	envName := s.cfg.Environment
	if envName == "" {
		envName = EnvOffice
	}
	env, err := channel.PresetByName(envName)
	if err != nil {
		return nil, err
	}
	if len(s.cfg.Obstacles) > 0 {
		if env.Plan == nil {
			env.Plan = &geom.FloorPlan{}
		}
		for i, o := range s.cfg.Obstacles {
			if o.LossDB < 0 {
				return nil, fmt.Errorf("ranging: obstacle %d has negative loss %g dB", i, o.LossDB)
			}
			env.Plan.Obstacles = append(env.Plan.Obstacles, geom.Obstacle{
				Seg:                geom.Segment{A: geom.Point{X: o.X1, Y: o.Y1}, B: geom.Point{X: o.X2, Y: o.Y2}},
				TransmissionLossDB: o.LossDB,
				Name:               fmt.Sprintf("obstacle%d", i),
			})
		}
	}
	numShapes := max(s.cfg.NumShapes, 1)
	var plan core.SlotPlan
	if s.cfg.MaxRange > 0 {
		plan, err = core.NewSlotPlan(s.cfg.MaxRange, numShapes)
		if err != nil {
			return nil, err
		}
	} else {
		plan = core.SingleSlot(numShapes)
	}
	seen := make(map[int]bool, len(s.responders))
	for _, r := range s.responders {
		if seen[r.id] {
			return nil, fmt.Errorf("ranging: duplicate responder ID %d", r.id)
		}
		seen[r.id] = true
		if plan.Capacity() > 1 && (r.id < 0 || r.id >= plan.Capacity()) {
			return nil, fmt.Errorf("ranging: responder ID %d outside scheme capacity %d",
				r.id, plan.Capacity())
		}
	}
	bank, err := pulse.DefaultBank(dw1000.SampleInterval, numShapes)
	if err != nil {
		return nil, err
	}
	net, err := sim.NewNetwork(sim.NetworkConfig{
		Environment:      env,
		Seed:             s.cfg.Seed,
		RandomClockPhase: true,
	})
	if err != nil {
		return nil, err
	}
	initNode, err := net.AddNode(sim.NodeConfig{
		ID:             -1,
		Name:           "initiator",
		Pos:            geom.Point{X: s.initiator.x, Y: s.initiator.y},
		ClockOffsetPPM: s.drawPPM(net),
	})
	if err != nil {
		return nil, err
	}
	resps := make([]*sim.Node, 0, len(s.responders))
	for _, r := range s.responders {
		node, err := net.AddNode(sim.NodeConfig{
			ID:             r.id,
			Name:           fmt.Sprintf("responder%d", r.id),
			Pos:            geom.Point{X: r.x, Y: r.y},
			ClockOffsetPPM: s.drawPPM(net),
		})
		if err != nil {
			return nil, err
		}
		resps = append(resps, node)
	}
	det, err := core.NewDetector(bank, core.DetectorConfig{
		Upsample:        s.cfg.Detector.Upsample,
		MaxResponses:    s.cfg.Detector.MaxResponses,
		ThresholdFactor: s.cfg.Detector.ThresholdFactor,
		Mode:            s.cfg.Detector.Mode,
		Workers:         s.cfg.Detector.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		net:       net,
		initiator: initNode,
		resps:     resps,
		plan:      plan,
		bank:      bank,
		detector:  det,
		resolver:  &core.Resolver{Plan: plan},
		seed:      s.cfg.Seed,
		roundCfg: sim.RoundConfig{
			ResponseDelay:         s.cfg.ResponseDelay,
			Plan:                  plan,
			Bank:                  bank,
			DisableTXQuantization: s.cfg.IdealTransceiver,
			DriftCompensation:     s.cfg.DriftCompensation,
			Capture:               captureModel(s.cfg.ModelDecodeFailures),
		},
	}, nil
}

func captureModel(enabled bool) *sim.CaptureModel {
	if !enabled {
		return nil
	}
	return sim.DefaultCaptureModel()
}

func (s *Scenario) drawPPM(net *sim.Network) float64 {
	if s.cfg.ClockOffsetPPM == 0 {
		return 0
	}
	return (net.RNG().Float64()*2 - 1) * s.cfg.ClockOffsetPPM
}

// Capacity returns the maximum number of concurrently supported
// responders of the built scheme (N_max = N_RPM · N_PS, Sect. VIII).
func (s *Session) Capacity() int { return s.plan.Capacity() }

// Plan returns the slot plan in force.
func (s *Session) Plan() core.SlotPlan { return s.plan }

// ResponseDelay returns the Δ_RESP used by the session, seconds.
func (s *Session) ResponseDelay() float64 {
	if s.roundCfg.ResponseDelay != 0 {
		return s.roundCfg.ResponseDelay
	}
	return airtime.DefaultResponseDelay
}
