package ranging

// Flight-recorder integration tests: a traced session must produce the
// full span tree — session.round wrapping sim.round and detect, with
// seed, ground truth and measurements in the attributes — stream it as
// parseable JSONL, keep results bit-identical, and record the quality
// counters reportcheck's gate consumes.

import (
	"bytes"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

func tracedScenario() *Scenario {
	sc := NewScenario(Config{
		Environment:      EnvHallway,
		Seed:             5,
		MaxRange:         75,
		NumShapes:        3,
		IdealTransceiver: true,
	})
	sc.SetInitiator(1, 1.2)
	for id := 0; id < 4; id++ {
		sc.AddResponder(id, 3.5+1.5*float64(id), 1.2)
	}
	return sc
}

func TestSessionFlightRecorder(t *testing.T) {
	bare, err := tracedScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}

	traced, err := tracedScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := trace.New(trace.Config{Writer: &buf})
	traced.SetFlightRecorder(tr)
	got, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// Tracing is observational: identical results.
	if len(got.Measurements) != len(want.Measurements) {
		t.Fatalf("tracing changed measurement count: %d vs %d",
			len(got.Measurements), len(want.Measurements))
	}
	for i := range want.Measurements {
		if got.Measurements[i] != want.Measurements[i] {
			t.Errorf("measurement %d differs with tracing on:\n  got  %+v\n  want %+v",
				i, got.Measurements[i], want.Measurements[i])
		}
	}

	// The stream must reparse and contain the full span tree.
	evs, err := trace.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]trace.Event{} // begin events by name
	var sessionEnd *trace.Event
	roundEvents := 0
	for i, ev := range evs {
		if ev.Phase == trace.PhaseBegin {
			spans[ev.Name] = ev
		}
		if ev.Phase == trace.PhaseInstant && ev.Name == trace.EventDetectRound {
			roundEvents++
		}
		if ev.Phase == trace.PhaseEnd && ev.Span == evs[0].Span {
			sessionEnd = &evs[i]
		}
	}
	session, ok := spans[trace.SpanSessionRound]
	if !ok {
		t.Fatal("no session.round span in trace")
	}
	if session.Parent != 0 {
		t.Error("session.round is not a root span")
	}
	if got := session.Attrs[trace.AttrSeed]; got != float64(5) {
		t.Errorf("seed attr = %v, want 5", got)
	}
	truth, ok := session.Attrs[trace.AttrTruth].([]any)
	if !ok || len(truth) != 4 {
		t.Fatalf("truth attr = %#v, want 4 responders", session.Attrs[trace.AttrTruth])
	}
	first := truth[0].(map[string]any)
	for _, key := range []string{trace.AttrID, trace.AttrSlot, trace.AttrShape, trace.AttrDistM} {
		if _, ok := first[key]; !ok {
			t.Errorf("truth entry missing %q: %v", key, first)
		}
	}
	simRound, ok := spans[trace.SpanSimRound]
	if !ok || simRound.Parent != session.Span {
		t.Errorf("sim.round span = %+v, want child of session %d", simRound, session.Span)
	}
	detect, ok := spans[trace.SpanDetect]
	if !ok || detect.Parent != session.Span {
		t.Errorf("detect span = %+v, want child of session %d", detect, session.Span)
	}
	if roundEvents == 0 {
		t.Error("no detect.round events in trace")
	}
	if sessionEnd == nil {
		t.Fatal("session.round never ended")
	}
	if got := sessionEnd.Attrs[trace.AttrStatus]; got != "ok" {
		t.Errorf("session end status = %v", got)
	}
	ms, ok := sessionEnd.Attrs[trace.AttrMeasurements].([]any)
	if !ok || len(ms) != len(want.Measurements) {
		t.Fatalf("end measurements = %#v, want %d entries",
			sessionEnd.Attrs[trace.AttrMeasurements], len(want.Measurements))
	}
}

func TestSessionRunRecordsQualityCounters(t *testing.T) {
	session, err := tracedScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	session.SetRecorder(reg)
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	matched := int64(0)
	for _, m := range res.Measurements {
		if m.HasTruth {
			matched++
		}
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(MetricRespondersExpected); got != 4 {
		t.Errorf("%s = %d, want 4", MetricRespondersExpected, got)
	}
	if got := snap.CounterValue(MetricRespondersFound); got != matched || matched == 0 {
		t.Errorf("%s = %d, want %d (nonzero)", MetricRespondersFound, got, matched)
	}
	if got := snap.CounterValue(MetricRoundErrors); got != 0 {
		t.Errorf("%s = %d, want 0", MetricRoundErrors, got)
	}
}

func TestSessionSamplingSuppressesWholeRounds(t *testing.T) {
	session, err := tracedScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SampleEvery: 2})
	session.SetFlightRecorder(tr)
	for i := 0; i < 4; i++ {
		if _, err := session.Run(); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.RootSpans != 4 || st.SampledOut != 2 {
		t.Fatalf("stats = %+v, want 4 roots with 2 sampled out", st)
	}
	// Every recorded event belongs to one of the two sampled rounds: the
	// round counters in the session.round begin events must be 0 and 2.
	var seen []int
	for _, ev := range tr.Events() {
		if ev.Phase == trace.PhaseBegin && ev.Name == trace.SpanSessionRound {
			seen = append(seen, int(ev.Attrs[trace.AttrRound].(uint64)))
		}
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 2 {
		t.Errorf("sampled rounds %v, want [0 2]", seen)
	}
}
