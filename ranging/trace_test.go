package ranging

import (
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

func traceSession(t *testing.T) *Session {
	t.Helper()
	sc := NewScenario(Config{Environment: EnvHallway, Seed: 11})
	sc.SetInitiator(1, 0.9)
	sc.AddResponder(0, 5, 0.9)
	sc.AddResponder(1, 9, 0.9)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	return session
}

func TestSessionTracerOrdering(t *testing.T) {
	session := traceSession(t)
	var events []TraceEvent
	session.SetTracer(func(e TraceEvent) { events = append(events, e) })
	if _, err := session.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("tracer received no events")
	}
	// A concurrent round walks the protocol phases strictly forward:
	// tx-init → rx-init → tx-resp → rx-aggregate → decode.
	phase := map[string]int{
		"tx-init": 0, "rx-init": 1, "tx-resp": 2, "rx-aggregate": 3, "decode": 4,
	}
	for i, e := range events {
		rank, known := phase[e.Kind]
		if !known {
			t.Fatalf("unknown event kind %q", e.Kind)
		}
		if i > 0 && rank < phase[events[i-1].Kind] {
			t.Fatalf("event %d (%s) out of phase order after %s", i, e.Kind, events[i-1].Kind)
		}
		if i > 0 && e.TimeSeconds < events[i-1].TimeSeconds {
			t.Fatalf("virtual time went backwards at event %d", i)
		}
	}
	if events[0].Kind != "tx-init" || events[len(events)-1].Kind != "decode" {
		t.Fatalf("round should start with tx-init and end with decode, got %s..%s",
			events[0].Kind, events[len(events)-1].Kind)
	}
	// Two responders: exactly two rx-init and two tx-resp events.
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts["tx-init"] != 1 || counts["rx-init"] != 2 || counts["tx-resp"] != 2 ||
		counts["rx-aggregate"] != 1 || counts["decode"] != 1 {
		t.Fatalf("unexpected event counts %v", counts)
	}
	// The String rendering stays grep-able: time, node, kind on one line.
	line := events[0].String()
	if !strings.Contains(line, "µs") || !strings.Contains(line, "tx-init") {
		t.Fatalf("unexpected trace line %q", line)
	}
}

func TestSessionNilTracerEmitsNothing(t *testing.T) {
	session := traceSession(t)
	fired := 0
	session.SetTracer(func(TraceEvent) { fired++ })
	session.SetTracer(nil)
	if _, err := session.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("cleared tracer still received %d events", fired)
	}
}

func TestSessionRecorderObservesWithoutChanging(t *testing.T) {
	plain, err := traceSession(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	recorded := traceSession(t)
	reg := obs.NewRegistry()
	recorded.SetRecorder(reg)
	got, err := recorded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Measurements) != len(plain.Measurements) || got.AnchorDistance != plain.AnchorDistance {
		t.Fatalf("recorder changed the round: %+v vs %+v", got, plain)
	}
	for i := range plain.Measurements {
		if got.Measurements[i] != plain.Measurements[i] {
			t.Fatalf("measurement %d differs under recording: %+v vs %+v",
				i, got.Measurements[i], plain.Measurements[i])
		}
	}
	snap := reg.Snapshot()
	if snap.CounterValue("sim.frames_on_air") != 3 { // 1 INIT + 2 RESP
		t.Fatalf("frames_on_air = %d, want 3", snap.CounterValue("sim.frames_on_air"))
	}
	if snap.CounterValue("detector.detect_calls") != 1 {
		t.Fatalf("detect_calls = %d, want 1", snap.CounterValue("detector.detect_calls"))
	}
}
