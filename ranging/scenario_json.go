package ranging

import (
	"encoding/json"
	"fmt"
	"io"
)

// ScenarioFile is the JSON on-disk description of a deployment, consumed
// by the crsim tool and usable by applications that store scenarios as
// configuration.
type ScenarioFile struct {
	// Config holds the session options.
	Config ConfigJSON `json:"config"`
	// Initiator is the initiator position.
	Initiator PositionJSON `json:"initiator"`
	// Responders lists the responder nodes.
	Responders []ResponderJSON `json:"responders"`
}

// ConfigJSON mirrors Config with JSON tags.
type ConfigJSON struct {
	Environment      string     `json:"environment,omitempty"`
	Seed             uint64     `json:"seed,omitempty"`
	MaxRangeM        float64    `json:"maxRangeMeters,omitempty"`
	NumShapes        int        `json:"numShapes,omitempty"`
	ResponseDelayUS  float64    `json:"responseDelayMicros,omitempty"`
	IdealTransceiver bool       `json:"idealTransceiver,omitempty"`
	ClockOffsetPPM   float64    `json:"clockOffsetPPM,omitempty"`
	Obstacles        []Obstacle `json:"obstacles,omitempty"`
}

// PositionJSON is a JSON-tagged point in meters.
type PositionJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ResponderJSON is one responder entry.
type ResponderJSON struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// LoadScenario reads a JSON scenario description and builds the Scenario.
func LoadScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f ScenarioFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("ranging: decode scenario: %w", err)
	}
	return f.Scenario()
}

// Scenario converts the file form into a builder.
func (f *ScenarioFile) Scenario() (*Scenario, error) {
	if len(f.Responders) == 0 {
		return nil, fmt.Errorf("ranging: scenario file has no responders")
	}
	sc := NewScenario(Config{
		Environment:      f.Config.Environment,
		Seed:             f.Config.Seed,
		MaxRange:         f.Config.MaxRangeM,
		NumShapes:        f.Config.NumShapes,
		ResponseDelay:    f.Config.ResponseDelayUS * 1e-6,
		IdealTransceiver: f.Config.IdealTransceiver,
		ClockOffsetPPM:   f.Config.ClockOffsetPPM,
		Obstacles:        f.Config.Obstacles,
	})
	sc.SetInitiator(f.Initiator.X, f.Initiator.Y)
	for _, r := range f.Responders {
		sc.AddResponder(r.ID, r.X, r.Y)
	}
	return sc, nil
}
