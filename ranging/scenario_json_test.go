package ranging

import (
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/pulse"
)

func TestLoadScenarioRoundTrip(t *testing.T) {
	const config = `{
	  "config": {
	    "environment": "office",
	    "seed": 7,
	    "maxRangeMeters": 75,
	    "numShapes": 3,
	    "responseDelayMicros": 290,
	    "idealTransceiver": true,
	    "obstacles": [{"X1": 5, "Y1": 0, "X2": 5, "Y2": 4, "LossDB": 10}]
	  },
	  "initiator": {"x": 1, "y": 1},
	  "responders": [
	    {"id": 0, "x": 4, "y": 1},
	    {"id": 1, "x": 7, "y": 3}
	  ]
	}`
	sc, err := LoadScenario(strings.NewReader(config))
	if err != nil {
		t.Fatal(err)
	}
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if session.Capacity() != 12 {
		t.Fatalf("capacity %d, want 12", session.Capacity())
	}
	if session.ResponseDelay() != 290e-6 {
		t.Fatalf("Δ_RESP %g", session.ResponseDelay())
	}
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurements) < 2 {
		t.Fatalf("%d measurements", len(res.Measurements))
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"config": {"warpDrive": true}, "initiator": {"x":1,"y":1}, "responders": [{"id":0,"x":2,"y":2}]}`,
		"no responders": `{"config": {}, "initiator": {"x":1,"y":1}, "responders": []}`,
		"negative loss": `{"config": {"obstacles":[{"X1":0,"Y1":0,"X2":1,"Y2":1,"LossDB":-3}]}, "initiator": {"x":1,"y":1}, "responders": [{"id":0,"x":2,"y":2}]}`,
	}
	for name, cfg := range cases {
		sc, err := LoadScenario(strings.NewReader(cfg))
		if err == nil {
			// Loss validation happens at Build time.
			if _, err = sc.Build(); err == nil {
				t.Errorf("%s: accepted", name)
			}
		}
	}
}

func TestMoveInitiatorAndResponder(t *testing.T) {
	sc := NewScenario(Config{Environment: EnvHallway, Seed: 3, IdealTransceiver: true,
		Detector: DetectorOptions{MaxResponses: 1}})
	sc.SetInitiator(1, 0.9)
	sc.AddResponder(0, 4, 0.9)
	session, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.AnchorDistance; d < 2.9 || d > 3.1 {
		t.Fatalf("initial distance %g", d)
	}
	session.MoveInitiator(2, 0.9)
	res, err = session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.AnchorDistance; d < 1.9 || d > 2.1 {
		t.Fatalf("after move: %g", d)
	}
	if err := session.MoveResponder(0, 8, 0.9); err != nil {
		t.Fatal(err)
	}
	res, err = session.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := res.AnchorDistance; d < 5.9 || d > 6.1 {
		t.Fatalf("after responder move: %g", d)
	}
	if err := session.MoveResponder(99, 0, 0); err == nil {
		t.Fatal("unknown responder accepted")
	}
	if td, err := session.TrueDistance(0); err != nil || td != 6 {
		t.Fatalf("TrueDistance = %g, %v", td, err)
	}
}

func TestNumPulseShapesMatchesBank(t *testing.T) {
	if NumPulseShapes != pulse.NumShapes {
		t.Fatalf("public constant %d out of sync with pulse.NumShapes %d",
			NumPulseShapes, pulse.NumShapes)
	}
}
