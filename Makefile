GO ?= go

# repro pipes through tee; plain sh reports tee's exit status, swallowing a
# crbench failure. bash + pipefail propagates it.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build test test-short bench repro smoke fuzz vet fmt clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (exit 1) when any file needs reformatting, so CI can gate on it;
# `gofmt -l` alone always exits 0.
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$files" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every paper table and figure at full trial counts, plus the
# machine-readable run report.
repro:
	$(GO) run ./cmd/crbench -json results/crbench-seed1.json | tee results/crbench-seed1.txt
	$(GO) run ./cmd/reportcheck results/crbench-seed1.json

# Fast end-to-end check of the instrumented pipeline: a tiny run must
# produce a valid, non-empty report.
smoke:
	$(GO) run ./cmd/crbench -trials 3 -json results/smoke-report.json sec5 campaign
	$(GO) run ./cmd/reportcheck results/smoke-report.json

fuzz:
	$(GO) test ./internal/dsp -fuzz FuzzFFTRoundTrip -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDetect -fuzztime 30s

clean:
	$(GO) clean ./...
