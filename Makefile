GO ?= go

.PHONY: all build test test-short bench repro fuzz vet fmt clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails (exit 1) when any file needs reformatting, so CI can gate on it;
# `gofmt -l` alone always exits 0.
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$files" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every paper table and figure at full trial counts.
repro:
	$(GO) run ./cmd/crbench | tee results/crbench-seed1.txt

fuzz:
	$(GO) test ./internal/dsp -fuzz FuzzFFTRoundTrip -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDetect -fuzztime 30s

clean:
	$(GO) clean ./...
