GO ?= go

# repro pipes through tee; plain sh reports tee's exit status, swallowing a
# crbench failure. bash + pipefail propagates it.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: all build test test-short bench microbench repro smoke fuzz vet fmt lint clean

# Staticcheck release `make lint` and CI pin, so a toolchain drift cannot
# change what the gate enforces.
STATICCHECK_VERSION ?= 2025.1.1

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The full static-analysis gate: the project-specific contract analyzers
# (cmd/crlint: detrand, nilinstr, bufalias, unitconv, shardsafe,
# wallclass, hotlabel, atomiclock — DESIGN.md §12 and §17), the
# suppression audit (every //lint:allow must be justified and still
# suppressing a live finding), go vet, and the pinned staticcheck.
# staticcheck is the only tool not shipped with the Go toolchain; when
# it is not installed the step is skipped with a notice instead of
# failing, so offline checkouts still get the crlint + vet gate. CI
# installs the pinned version and runs all of them.
lint:
	$(GO) run ./cmd/crlint
	$(GO) run ./cmd/crlint -audit
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Fails (exit 1) when any file needs reformatting, so CI can gate on it;
# `gofmt -l` alone always exits 0.
fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$files" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Go micro-benchmarks (single iteration: a compile-and-run sanity pass,
# not a timing study).
microbench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Append the next point of the committed BENCH_*.json performance
# trajectory: the standing experiment set at 25 trials plus the
# 108-template fullbank detector comparison and the sharded-engine swarm
# scale sweep (trials 25 reaches the 100k-node point), validated and
# regression-checked against the previous point.
bench:
	@last=$$(ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$$/\1/p' | sort -n | tail -1); \
	next=$$(( $${last:-0} + 1 )); \
	echo "writing BENCH_$$next.json"; \
	$(GO) run ./cmd/crbench -trials 25 -json BENCH_$$next.json fig4 sec5 sec6 campaign fullbank swarm >/dev/null; \
	if [ -n "$$last" ]; then \
		$(GO) run ./cmd/reportcheck -compare BENCH_$$last.json BENCH_$$next.json; \
	else \
		$(GO) run ./cmd/reportcheck BENCH_$$next.json; \
	fi

# Regenerate every paper table and figure at full trial counts, plus the
# machine-readable run report.
repro:
	$(GO) run ./cmd/crbench -json results/crbench-seed1.json | tee results/crbench-seed1.txt
	$(GO) run ./cmd/reportcheck results/crbench-seed1.json

# Fast end-to-end check of the instrumented pipeline: a tiny run must
# produce a valid, non-empty report and a triage-able flight-recorder
# trace.
smoke:
	$(GO) run ./cmd/crbench -trials 3 -json results/smoke-report.json -tracefile results/smoke-trace.jsonl sec5 campaign
	$(GO) run ./cmd/reportcheck -require-metrics detector.,sim.,experiments.,trace. results/smoke-report.json
	$(GO) run ./cmd/crtrace results/smoke-trace.jsonl

fuzz:
	$(GO) test ./internal/dsp -fuzz FuzzFFTRoundTrip -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzDetect -fuzztime 30s

clean:
	$(GO) clean ./...
