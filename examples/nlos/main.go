// NLOS: the paper's future-work question — what happens to concurrent
// ranging when a responder's line of sight is obstructed?
//
// Part 1 contrasts per-responder ranging errors with and without a
// partition blocking one direct path: the obstructed responder shows the
// positive bias typical of NLOS (its attenuated direct path loses to
// later reflections).
//
// Part 2 shows a mitigation at the application layer: with redundant
// anchors, robust localization (Tukey-biweight reweighting) rejects the
// NLOS-inflated range that drags a plain least-squares fix.
//
// Run with: go run ./examples/nlos
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func rangingBias(obstructed bool, seed uint64) error {
	cfg := ranging.Config{
		Environment:      ranging.EnvOffice,
		Seed:             seed,
		NumShapes:        2, // pulse shaping identifies the two responders
		IdealTransceiver: true,
	}
	if obstructed {
		// A partition between the initiator (1,4) and responder 1 (8,4).
		cfg.Obstacles = []ranging.Obstacle{{X1: 5, Y1: 3, X2: 5, Y2: 5, LossDB: 12}}
	}
	sc := ranging.NewScenario(cfg)
	sc.SetInitiator(1, 4)
	sc.AddResponder(0, 4, 1) // clear LOS
	sc.AddResponder(1, 8, 4) // behind the partition when obstructed
	session, err := sc.Build()
	if err != nil {
		return err
	}
	var sum0, sum1 float64
	const rounds = 25
	for i := 0; i < rounds; i++ {
		res, err := session.Run()
		if err != nil {
			return err
		}
		for _, m := range res.Measurements {
			switch m.ResponderID {
			case 0:
				sum0 += m.Error()
			case 1:
				sum1 += m.Error()
			}
		}
	}
	label := "free line of sight"
	if obstructed {
		label = "12 dB partition before responder 1"
	}
	fmt.Printf("%-38s mean error: responder 0 %+6.3f m, responder 1 %+6.3f m\n",
		label+":", sum0/rounds, sum1/rounds)
	return nil
}

func robustLocalization() error {
	anchors := map[int]ranging.Position{
		0: {X: 0.5, Y: 0.5}, 1: {X: 9.5, Y: 0.5}, 2: {X: 9.5, Y: 7.5},
		3: {X: 0.5, Y: 7.5}, 4: {X: 5.0, Y: 0.5},
	}
	truth := ranging.Position{X: 4, Y: 4}
	sc := ranging.NewScenario(ranging.Config{
		Environment:      ranging.EnvOffice,
		Seed:             33,
		MaxRange:         75,
		NumShapes:        2,
		IdealTransceiver: true,
		// A cabinet blocks the path to anchor 4.
		Obstacles: []ranging.Obstacle{{X1: 4.2, Y1: 1.5, X2: 4.8, Y2: 1.5, LossDB: 18}},
	})
	sc.SetInitiator(truth.X, truth.Y)
	for id, a := range anchors {
		sc.AddResponder(id, a.X, a.Y)
	}
	session, err := sc.Build()
	if err != nil {
		return err
	}
	res, err := session.Run()
	if err != nil {
		return err
	}
	plain, err := ranging.LocateFrom(res.Measurements, anchors)
	if err != nil {
		return err
	}
	robust, err := ranging.LocateRobust(res.Measurements, anchors)
	if err != nil {
		return err
	}
	dist := func(p ranging.Position) float64 {
		return math.Hypot(p.X-truth.X, p.Y-truth.Y)
	}
	fmt.Printf("\nlocalization with one NLOS anchor (truth %.1f, %.1f):\n", truth.X, truth.Y)
	for _, m := range res.Measurements {
		fmt.Printf("  anchor %d: measured %6.2f m (truth %5.2f, error %+6.3f)\n",
			m.ResponderID, m.Distance, m.TrueDistance, m.Error())
	}
	fmt.Printf("  plain least squares: (%.2f, %.2f) — error %.2f m\n", plain.X, plain.Y, dist(plain))
	fmt.Printf("  robust (Tukey):      (%.2f, %.2f) — error %.2f m\n", robust.X, robust.Y, dist(robust))
	return nil
}

func main() {
	fmt.Println("concurrent ranging under attenuated line of sight (future work, Sect. IX)")
	if err := rangingBias(false, 21); err != nil {
		log.Fatal(err)
	}
	if err := rangingBias(true, 21); err != nil {
		log.Fatal(err)
	}
	if err := robustLocalization(); err != nil {
		log.Fatal(err)
	}
}
