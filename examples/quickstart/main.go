// Quickstart: one concurrent-ranging round in a hallway.
//
// An initiator broadcasts a single INIT frame; three responders at 3, 6
// and 10 m reply simultaneously after Δ_RESP = 290 µs. The initiator
// derives the distance to the closest responder from the decoded payload
// (Eq. 2) and the distances to the others from the channel impulse
// response (Eq. 4) — four messages on air instead of the twelve that
// scheduled two-way ranging would need.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	sc := ranging.NewScenario(ranging.Config{
		Environment: ranging.EnvHallway,
		Seed:        42,
		// Three pulse shapes let the initiator tell the responders apart
		// (Sect. V of the paper); IDs 0..2 map to shapes s1..s3.
		NumShapes: 3,
	})
	sc.SetInitiator(2.0, 0.9)
	sc.AddResponder(0, 5.0, 0.9)  // 3 m away
	sc.AddResponder(1, 8.0, 0.9)  // 6 m away
	sc.AddResponder(2, 12.0, 0.9) // 10 m away

	session, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one round, %d messages on air (scheduled SS-TWR would need %d)\n",
		result.MessagesOnAir, 4*3)
	fmt.Printf("anchor distance via SS-TWR payload: %.2f m\n\n", result.AnchorDistance)
	for _, m := range result.Measurements {
		role := ""
		if m.Anchor {
			role = "  <- decoded payload (Eq. 2)"
		}
		fmt.Printf("responder %d: %6.2f m (truth %5.2f m, error %+.3f m)%s\n",
			m.ResponderID, m.Distance, m.TrueDistance, m.Error(), role)
	}
	fmt.Println("\nnote: CIR-derived errors up to ±1.2 m stem from the DW1000's 8 ns")
	fmt.Println("delayed-TX truncation (paper Sect. III); set Config.IdealTransceiver")
	fmt.Println("to model the next-generation radio and recover ~2 cm accuracy")
}
