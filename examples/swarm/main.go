// Swarm: a mobile node tracks its distance to four anchors while moving
// through an office, comparing the channel cost of concurrent ranging
// against classical scheduled SS-TWR.
//
// Every position update needs distances to all four anchors. Concurrent
// ranging gets them with 5 messages (1 INIT + 4 overlapping RESP) and a
// single receive operation at the mobile; scheduled SS-TWR needs 8
// messages and 4 receive operations — the energy argument of Sect. I
// (the DW1000 draws up to 155 mA in receive mode).
//
// Run with: go run ./examples/swarm
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	anchors := map[int]ranging.Position{
		0: {X: 0.5, Y: 0.5}, 1: {X: 9.5, Y: 0.5},
		2: {X: 9.5, Y: 7.5}, 3: {X: 0.5, Y: 7.5},
	}
	// The mobile node's true trajectory: a diagonal walk through the room.
	waypoints := []ranging.Position{
		{X: 2, Y: 2}, {X: 3.5, Y: 3}, {X: 5, Y: 4}, {X: 6.5, Y: 5}, {X: 8, Y: 6},
	}

	sc := ranging.NewScenario(ranging.Config{
		Environment:      ranging.EnvOffice,
		Seed:             100,
		MaxRange:         75,
		NumShapes:        1, // 4 slots × 1 shape cover the 4 anchors
		IdealTransceiver: true,
	})
	sc.SetInitiator(waypoints[0].X, waypoints[0].Y)
	for id, p := range anchors {
		sc.AddResponder(id, p.X, p.Y)
	}
	session, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}

	var totalMsgs, scheduledMsgs int
	var trackErr, fixes float64
	for step, wp := range waypoints {
		session.MoveInitiator(wp.X, wp.Y)
		res, err := session.Run()
		if err != nil {
			log.Fatal(err)
		}
		totalMsgs += res.MessagesOnAir
		scheduledMsgs += 2 * len(anchors) // INIT+RESP per anchor pair

		pos, err := ranging.LocateFrom(res.Measurements, anchors)
		if err != nil {
			fmt.Printf("step %d: localization failed: %v\n", step, err)
			continue
		}
		e := math.Hypot(pos.X-wp.X, pos.Y-wp.Y)
		trackErr += e
		fixes++
		fmt.Printf("step %d: truth (%.1f, %.1f)  fix (%.2f, %.2f)  error %.2f m  [%d msgs]\n",
			step, wp.X, wp.Y, pos.X, pos.Y, e, res.MessagesOnAir)
	}
	fmt.Printf("\ntrajectory: mean position error %.2f m over %g fixes\n", trackErr/fixes, fixes)
	fmt.Printf("channel usage: %d messages concurrent vs %d scheduled SS-TWR (%.0f%% saved)\n",
		totalMsgs, scheduledMsgs, 100*(1-float64(totalMsgs)/float64(scheduledMsgs)))
}
