// Museum: the paper's Fig. 8 scenario as an application — a visitor
// device localizes itself against nine wall-mounted anchor tags with a
// single concurrent-ranging round.
//
// The nine anchors share the channel through the combined scheme of
// Sect. VIII: response position modulation splits the CIR into four slots
// (sized for a 75 m communication range) and within each slot up to three
// responders are told apart by their pulse shape (N_max = 4·3 = 12).
// The visitor then solves for its own position from the nine distances —
// the anchor-based localization the paper names as future work.
//
// Run with: go run ./examples/museum
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	// Anchor tags along the walls of a 30 m × 2.4 m gallery corridor.
	anchors := map[int]ranging.Position{
		0: {X: 3, Y: 0.3}, 1: {X: 7, Y: 2.1}, 2: {X: 11, Y: 0.3},
		3: {X: 15, Y: 2.1}, 4: {X: 19, Y: 0.3}, 5: {X: 23, Y: 2.1},
		6: {X: 26, Y: 0.3}, 7: {X: 28, Y: 2.1}, 8: {X: 29, Y: 0.3},
	}
	visitor := ranging.Position{X: 9.5, Y: 1.1}

	sc := ranging.NewScenario(ranging.Config{
		Environment: ranging.EnvHallway,
		Seed:        7,
		MaxRange:    75, // → 4 RPM slots (Sect. VII/VIII)
		NumShapes:   3,  // s1..s3 per slot
		// Model the next-generation transceiver without the 8 ns
		// delayed-TX truncation for centimeter-level CIR distances.
		IdealTransceiver: true,
	})
	sc.SetInitiator(visitor.X, visitor.Y)
	for id, p := range anchors {
		sc.AddResponder(id, p.X, p.Y)
	}
	session, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined scheme: %d slots x %d shapes -> capacity %d responders\n",
		session.Plan().NumSlots, session.Plan().NumShapes, session.Capacity())

	result, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d messages on air for %d anchors\n\n", result.MessagesOnAir, len(anchors))
	identified := 0
	for _, m := range result.Measurements {
		if _, ok := anchors[m.ResponderID]; !ok {
			continue
		}
		identified++
		fmt.Printf("anchor %d (slot %d, shape s%d): %6.2f m  (truth %5.2f m)\n",
			m.ResponderID, m.Slot, m.Shape+1, m.Distance, m.TrueDistance)
	}
	fmt.Printf("\nidentified %d/%d anchors in one round\n", identified, len(anchors))

	pos, err := ranging.LocateFrom(result.Measurements, anchors)
	if err != nil {
		log.Fatal(err)
	}
	errDist := math.Hypot(pos.X-visitor.X, pos.Y-visitor.Y)
	fmt.Printf("visitor position: (%.2f, %.2f), truth (%.2f, %.2f), error %.2f m\n",
		pos.X, pos.Y, visitor.X, visitor.Y, errDist)
}
