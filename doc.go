// Package concurrentranging is a simulation-backed reproduction of
// "Concurrent Ranging with Ultra-Wideband Radios: From Experimental
// Evidence to a Practical Solution" (Großwindhager, Boano, Rath, Römer —
// ICDCS 2018).
//
// The public API lives in the ranging subpackage; the per-figure/table
// reproduction harness is exposed through the crbench command and the
// benchmarks in bench_test.go. See README.md for an overview, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results.
package concurrentranging
