package main

import "testing"

func TestParsePoint(t *testing.T) {
	x, y, err := parsePoint("2.5,3.75")
	if err != nil || x != 2.5 || y != 3.75 {
		t.Fatalf("got %g,%g err %v", x, y, err)
	}
	for _, bad := range []string{"", "1", "a,b", "1;2"} {
		if _, _, err := parsePoint(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestResponderFlag(t *testing.T) {
	var r responderFlags
	if err := r.Set("3:1.5,2.5"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].id != 3 || r[0].x != 1.5 || r[0].y != 2.5 {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"", "1.5,2.5", "x:1,2", "3:nope"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
