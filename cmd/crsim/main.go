// Command crsim runs one concurrent-ranging round for a deployment given
// on the command line and prints the per-responder results.
//
// Usage:
//
//	crsim -env hallway -init 2,1 -resp 0:5,1 -resp 1:8,1 -resp 2:12,1
//	crsim -config scenario.json [-rounds N]
//
// Each -resp flag is ID:x,y in meters. With -shapes > 1 and -maxrange > 0
// the combined pulse-shaping × response-position-modulation scheme of the
// paper's Sect. VIII identifies every responder; otherwise ranging is
// anonymous (Sect. IV). A JSON scenario file (see ranging.ScenarioFile)
// replaces the geometry flags entirely.
//
// -pprof addr serves net/http/pprof and expvar on the given address
// (/debug/vars exposes the session's metrics registry as "crmetrics") for
// profiling long -rounds runs; addr "localhost:0" picks an ephemeral port.
//
// -tracefile path streams the detection flight recorder to a JSONL trace:
// one span per ranging round carrying the trial's ground truth, nested
// protocol and detector spans, and one structured event per
// search-and-subtract iteration. -trace-sample N records every Nth round.
// Analyze the file with crtrace (triage table, span dumps, Chrome trace
// export).
//
// -swarm N switches to the sharded parallel event engine and simulates an
// N-node city-scale swarm (mobility, round phases and geometry from the
// seed's split RNG streams), printing engine and ranging summaries.
// -swarm-workers sets the worker count (0 = GOMAXPROCS), -swarm-duration
// the simulated horizon in seconds, and -swarm-verify re-runs the same
// deployment single-worker and fails unless the results are bit-identical.
// -tracefile and -pprof work in swarm mode too: rounds open swarm.round
// flight-recorder spans crtrace can triage, and the debug server exposes
// the live swarm/engine metrics crtop watches.
//
// -engine-profile attaches the sharded-engine execution profiler and
// prints the scaling diagnosis (parallel efficiency, barrier-stall and
// bus-drain breakdown, critical shard, per-worker occupancy);
// -engine-timeline path additionally exports the barrier/worker timeline
// as a Chrome trace (load in chrome://tracing or Perfetto). -swarm-report
// path writes a machine-readable RunReport carrying the swarm metrics and
// the engine diagnosis fields; profiling is observational, so the
// stripped report is bit-identical with and without it (reportcheck
// -require-deterministic verifies exactly that in CI).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

type responderFlags []responderSpec

type responderSpec struct {
	id   int
	x, y float64
}

func (r *responderFlags) String() string { return fmt.Sprint(*r) }

func (r *responderFlags) Set(v string) error {
	idPos := strings.SplitN(v, ":", 2)
	if len(idPos) != 2 {
		return fmt.Errorf("want ID:x,y, got %q", v)
	}
	id, err := strconv.Atoi(idPos[0])
	if err != nil {
		return fmt.Errorf("responder ID %q: %w", idPos[0], err)
	}
	x, y, err := parsePoint(idPos[1])
	if err != nil {
		return err
	}
	*r = append(*r, responderSpec{id: id, x: x, y: y})
	return nil
}

func parsePoint(v string) (float64, float64, error) {
	xy := strings.SplitN(v, ",", 2)
	if len(xy) != 2 {
		return 0, 0, fmt.Errorf("want x,y, got %q", v)
	}
	x, err := strconv.ParseFloat(xy[0], 64)
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.ParseFloat(xy[1], 64)
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crsim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var resps responderFlags
	env := flag.String("env", ranging.EnvHallway, "environment preset (free-space, hallway, office, industrial)")
	initPos := flag.String("init", "1,1", "initiator position x,y in meters")
	seed := flag.Uint64("seed", 1, "simulation seed")
	shapes := flag.Int("shapes", 1, "number of pulse shapes N_PS (1 = anonymous)")
	maxRange := flag.Float64("maxrange", 0, "max communication range in meters (enables RPM slots)")
	ideal := flag.Bool("ideal", false, "disable the DW1000 8 ns delayed-TX quantization")
	rounds := flag.Int("rounds", 1, "number of ranging rounds to run")
	configPath := flag.String("config", "", "JSON scenario file (replaces the geometry flags)")
	timeline := flag.Bool("trace", false, "print the protocol event timeline of each round")
	traceFile := flag.String("tracefile", "", "stream the detection flight recorder to this JSONL `file` (analyze with crtrace)")
	traceSample := flag.Int("trace-sample", 1, "record every Nth round in the flight recorder")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this `address`")
	swarmN := flag.Int("swarm", 0, "simulate an N-node city-scale swarm on the sharded engine instead of a single round")
	swarmWorkers := flag.Int("swarm-workers", 0, "sharded engine worker count for -swarm (0 = GOMAXPROCS)")
	swarmDuration := flag.Float64("swarm-duration", 0, "simulated horizon in seconds for -swarm (0 = default 0.2 s)")
	swarmVerify := flag.Bool("swarm-verify", false, "also run -swarm with 1 worker and fail unless results are bit-identical")
	engineProfile := flag.Bool("engine-profile", false, "attach the sharded-engine execution profiler to -swarm and print the scaling diagnosis")
	engineTimeline := flag.String("engine-timeline", "", "export the -swarm barrier/worker timeline as a Chrome trace to this `file` (implies -engine-profile)")
	swarmReport := flag.String("swarm-report", "", "write a machine-readable -swarm run report to this `path`")
	flag.Var(&resps, "resp", "responder as ID:x,y (repeatable)")
	flag.Parse()

	if *swarmN > 0 {
		return runSwarm(swarmOptions{
			n:            *swarmN,
			workers:      *swarmWorkers,
			duration:     *swarmDuration,
			seed:         *seed,
			verify:       *swarmVerify,
			profile:      *engineProfile || *engineTimeline != "",
			timelinePath: *engineTimeline,
			reportPath:   *swarmReport,
			traceFile:    *traceFile,
			traceSample:  *traceSample,
			pprofAddr:    *pprofAddr,
		})
	}

	var sc *ranging.Scenario
	nResp := len(resps)
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sc, err = ranging.LoadScenario(f)
		if err != nil {
			return err
		}
	} else {
		if len(resps) == 0 {
			return fmt.Errorf("at least one -resp (or -config) required")
		}
		ix, iy, err := parsePoint(*initPos)
		if err != nil {
			return fmt.Errorf("initiator position: %w", err)
		}
		sc = ranging.NewScenario(ranging.Config{
			Environment:      *env,
			Seed:             *seed,
			NumShapes:        *shapes,
			MaxRange:         *maxRange,
			IdealTransceiver: *ideal,
		})
		sc.SetInitiator(ix, iy)
		for _, r := range resps {
			sc.AddResponder(r.id, r.x, r.y)
		}
	}
	session, err := sc.Build()
	if err != nil {
		return err
	}
	if *timeline {
		session.SetTracer(func(e ranging.TraceEvent) { fmt.Println("  " + e.String()) })
	}
	if *traceFile != "" {
		f, ferr := os.Create(*traceFile)
		if ferr != nil {
			return fmt.Errorf("tracefile: %w", ferr)
		}
		tr := trace.New(trace.Config{Writer: f, SampleEvery: *traceSample})
		session.SetFlightRecorder(tr)
		defer func() {
			ferr := tr.Flush()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil && err == nil {
				err = fmt.Errorf("tracefile: %w", ferr)
			}
			st := tr.Stats()
			fmt.Fprintf(os.Stderr, "crsim: trace: %d events, %d/%d rounds sampled -> %s\n",
				st.Events, st.RootSpans-st.SampledOut, st.RootSpans, *traceFile)
		}()
	}
	if *pprofAddr != "" {
		reg := obs.NewRegistry()
		session.SetRecorder(reg)
		dbg, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "crsim: debug server on http://%s/debug/pprof/ (/metrics, /debug/metrics.json)\n", dbg.Addr)
	}
	return runRounds(session, nResp, *rounds)
}

func runRounds(session *ranging.Session, nResp, rounds int) error {
	fmt.Printf("%d responders, scheme capacity %d, Δ_RESP %.0f µs\n",
		nResp, session.Capacity(), session.ResponseDelay()*1e6)
	for round := 0; round < rounds; round++ {
		res, err := session.Run()
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("round %d: %d messages on air, anchor d_TWR = %.3f m\n",
			round, res.MessagesOnAir, res.AnchorDistance)
		fmt.Printf("  %-10s %-6s %-6s %-10s %-10s %-8s\n",
			"responder", "slot", "shape", "dist [m]", "true [m]", "err [m]")
		for _, m := range res.Measurements {
			id := fmt.Sprint(m.ResponderID)
			if m.ResponderID < 0 {
				id = "anon"
			}
			anchor := ""
			if m.Anchor {
				anchor = " (anchor)"
			}
			fmt.Printf("  %-10s %-6d %-6d %-10.3f %-10.3f %-+8.3f%s\n",
				id, m.Slot, m.Shape, m.Distance, m.TrueDistance, m.Error(), anchor)
		}
	}
	return nil
}

// swarmOptions collects the flag-derived swarm-mode settings.
type swarmOptions struct {
	n        int
	workers  int
	duration float64
	seed     uint64
	verify   bool
	// profile attaches the engine execution profiler; timelinePath also
	// exports the barrier/worker timeline as a Chrome trace.
	profile      bool
	timelinePath string
	// reportPath writes a RunReport (tool "crsim", one "swarm"
	// experiment) with the registry snapshot and engine diagnosis fields.
	reportPath string
	// traceFile/traceSample stream swarm.round flight-recorder spans.
	traceFile   string
	traceSample int
	pprofAddr   string
}

// runSwarm simulates an N-node swarm on the sharded event engine and
// prints a one-screen summary. With verify it re-runs the same
// deployment single-worker and fails unless the merged stats and event
// counts are bit-identical — the engine's determinism contract, which an
// attached profiler or flight recorder must not disturb.
func runSwarm(opts swarmOptions) (err error) {
	cfg := sim.SwarmConfig{N: opts.n, Seed: opts.seed, Duration: opts.duration}
	sw, err := sim.NewSwarm(cfg)
	if err != nil {
		return err
	}
	workers := opts.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := obs.NewRegistry()
	sw.SetRecorder(reg)
	if opts.pprofAddr != "" {
		dbg, derr := obs.ServeDebug(opts.pprofAddr, reg)
		if derr != nil {
			return fmt.Errorf("pprof: %w", derr)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "crsim: debug server on http://%s/debug/pprof/ (/metrics, /debug/metrics.json)\n", dbg.Addr)
	}
	if opts.traceFile != "" {
		f, ferr := os.Create(opts.traceFile)
		if ferr != nil {
			return fmt.Errorf("tracefile: %w", ferr)
		}
		tr := trace.New(trace.Config{Writer: f, SampleEvery: opts.traceSample})
		tr.SetMetrics(reg)
		sw.SetFlightRecorder(tr)
		defer func() {
			ferr := tr.Flush()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil && err == nil {
				err = fmt.Errorf("tracefile: %w", ferr)
			}
			st := tr.Stats()
			fmt.Fprintf(os.Stderr, "crsim: trace: %d events, %d/%d rounds sampled -> %s\n",
				st.Events, st.RootSpans-st.SampledOut, st.RootSpans, opts.traceFile)
		}()
	}
	var prof *sim.EngineProfiler
	if opts.profile {
		prof = sim.NewEngineProfiler(sim.EngineProfilerConfig{Recorder: reg})
	}
	start := time.Now()
	res, err := sw.RunShardedProfiled(workers, prof)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Printf("swarm: %d nodes over %.0f × %.0f m, %d shards, lookahead %.1f µs\n",
		opts.n, sw.Side(), sw.Side(), sw.Shards(), sw.Lookahead()*1e6)
	fmt.Printf("engine: %d workers, %d barrier windows, %d events in %.3f s (%.3g events/s)\n",
		res.Workers, res.Windows, res.Events, wall.Seconds(), float64(res.Events)/wall.Seconds())
	st := res.Stats
	fmt.Printf("rounds: %d started, %d completed (%d empty), %d cross-shard frames (%.2f%% of %d)\n",
		st.RoundsStarted, st.RoundsCompleted, st.EmptyRounds,
		st.CrossShardFrames, 100*float64(st.CrossShardFrames)/float64(max(st.Frames, 1)), st.Frames)
	fmt.Printf("ranging: %d responses, %d resolved, %d slot collisions, %d busy skips, mean |err| %.3f m\n",
		st.Responses, st.Resolved, st.SlotCollisions, st.BusySkips, st.MeanAbsErr())
	var profile *sim.EngineProfile
	if prof != nil {
		profile = prof.Profile()
		fmt.Print(profile.String())
		if opts.timelinePath != "" {
			f, ferr := os.Create(opts.timelinePath)
			if ferr != nil {
				return fmt.Errorf("engine-timeline: %w", ferr)
			}
			werr := prof.WriteChromeTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("engine-timeline: %w", werr)
			}
			fmt.Fprintf(os.Stderr, "crsim: engine timeline (%d slices) -> %s\n",
				profile.TimelineSlices, opts.timelinePath)
		}
	}
	if opts.verify {
		// The reference run is bare: no recorder, flight recorder, or
		// profiler — so the comparison also proves instrumentation is
		// observational.
		sw.SetRecorder(nil)
		sw.SetFlightRecorder(nil)
		ref, verr := sw.RunSharded(1)
		sw.SetRecorder(reg)
		if verr != nil {
			return fmt.Errorf("verify: %w", verr)
		}
		if ref.Stats != res.Stats || ref.Events != res.Events {
			return fmt.Errorf("verify: %d-worker run diverged from 1-worker reference:\n  %d workers: %s\n  1 worker:  %s",
				res.Workers, res.Workers, res.Stats.String(), ref.Stats.String())
		}
		fmt.Printf("verify: %d-worker run bit-identical to 1-worker reference\n", res.Workers)
	}
	if opts.reportPath != "" {
		if rerr := writeSwarmReport(opts, reg, sw, res, profile, wall); rerr != nil {
			return rerr
		}
	}
	return nil
}

// writeSwarmReport assembles the swarm run's RunReport: the registry
// snapshot (swarm tallies, live engine gauges, trace mirror when tracing),
// one "swarm" experiment entry carrying throughput and — when profiled —
// the engine diagnosis fields. The swarm run is one trial, recorded as
// such so the report passes the same liveness checks campaign reports do.
// Every profiler-only contribution is wall-time-class, so the stripped
// report is bit-identical with and without -engine-profile.
func writeSwarmReport(opts swarmOptions, reg *obs.Registry, sw *sim.Swarm, res *sim.SwarmResult, profile *sim.EngineProfile, wall time.Duration) error {
	sw.Record(reg, res)
	reg.Count(experiments.MetricTrials, 1)
	reg.Observe(experiments.MetricTrialSeconds, wall.Seconds())
	report := obs.NewRunReport("crsim", opts.seed, 1)
	er := obs.ExperimentReport{
		Name:        "swarm",
		WallSeconds: wall.Seconds(),
	}
	if secs := wall.Seconds(); secs > 0 {
		er.EventsPerSecond = float64(res.Events) / secs
		er.RoundsPerSecond = float64(res.Stats.RoundsCompleted) / secs
	}
	if profile != nil {
		er.EngineParallelEfficiency = profile.ParallelEfficiency
		er.EngineBarrierStallPct = profile.BarrierStallPct
		er.EngineDrainPct = profile.DrainPct
		er.EngineCriticalShard = profile.CriticalShard
		er.EngineCriticalShardPct = 100 * profile.CriticalShardShare
	}
	report.Experiments = append(report.Experiments, er)
	report.Finish(reg.Snapshot(), wall)
	if err := report.Validate(); err != nil {
		return fmt.Errorf("swarm-report: %w", err)
	}
	if err := report.WriteFile(opts.reportPath); err != nil {
		return fmt.Errorf("swarm-report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "crsim: swarm report -> %s\n", opts.reportPath)
	return nil
}
