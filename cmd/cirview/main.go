// Command cirview renders the channel impulse response an initiator
// observes during one concurrent-ranging round, either as an ASCII plot
// or as CSV for external plotting.
//
// Usage:
//
//	cirview -env hallway -init 2,1 -resp 0:5,1 -resp 1:8,1 [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cirview:", err)
		os.Exit(1)
	}
}

func run() error {
	env := flag.String("env", ranging.EnvHallway, "environment preset")
	initPos := flag.String("init", "1,1", "initiator position x,y")
	seed := flag.Uint64("seed", 1, "simulation seed")
	shapes := flag.Int("shapes", 1, "number of pulse shapes")
	maxRange := flag.Float64("maxrange", 0, "max range in meters (enables RPM)")
	csv := flag.Bool("csv", false, "emit CSV (tap,time_ns,magnitude) instead of the ASCII plot")
	width := flag.Int("width", 100, "ASCII plot width")
	taps := flag.Int("taps", 256, "number of CIR taps to show (0 = all 1016)")
	var resps stringList
	flag.Var(&resps, "resp", "responder as ID:x,y (repeatable)")
	flag.Parse()

	if len(resps) == 0 {
		return fmt.Errorf("at least one -resp required")
	}
	sc := ranging.NewScenario(ranging.Config{
		Environment: *env,
		Seed:        *seed,
		NumShapes:   *shapes,
		MaxRange:    *maxRange,
	})
	x, y, err := parsePoint(*initPos)
	if err != nil {
		return err
	}
	sc.SetInitiator(x, y)
	for _, spec := range resps {
		idPos := strings.SplitN(spec, ":", 2)
		if len(idPos) != 2 {
			return fmt.Errorf("responder %q: want ID:x,y", spec)
		}
		id, err := strconv.Atoi(idPos[0])
		if err != nil {
			return err
		}
		rx, ry, err := parsePoint(idPos[1])
		if err != nil {
			return err
		}
		sc.AddResponder(id, rx, ry)
	}
	session, err := sc.Build()
	if err != nil {
		return err
	}
	res, err := session.Run()
	if err != nil {
		return err
	}
	n := len(res.CIR)
	if *taps > 0 && *taps < n {
		n = *taps
	}
	if *csv {
		fmt.Println("tap,time_ns,magnitude")
		for i := 0; i < n; i++ {
			fmt.Printf("%d,%.4f,%.6e\n", i, float64(i)*res.CIRSampleInterval*1e9, res.CIR[i])
		}
		return nil
	}
	plotASCII(res.CIR[:n], res.CIRSampleInterval, *width)
	fmt.Printf("detected %d responses; anchor d_TWR = %.3f m\n",
		len(res.Measurements), res.AnchorDistance)
	for _, m := range res.Measurements {
		fmt.Printf("  responder %2d: %.3f m (true %.3f)\n", m.ResponderID, m.Distance, m.TrueDistance)
	}
	return nil
}

// plotASCII draws the magnitude as a row-per-level terminal plot.
func plotASCII(mag []float64, ts float64, width int) {
	const rows = 12
	peak := 0.0
	for _, v := range mag {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 || width < 2 {
		fmt.Println("(empty CIR)")
		return
	}
	// Down-sample to the width, keeping bucket maxima.
	cols := make([]float64, width)
	for c := range cols {
		lo := c * len(mag) / width
		hi := (c + 1) * len(mag) / width
		if hi <= lo {
			hi = lo + 1
		}
		for _, v := range mag[lo:min(hi, len(mag))] {
			if v > cols[c] {
				cols[c] = v
			}
		}
	}
	for r := rows; r >= 1; r-- {
		level := peak * float64(r) / rows
		var b strings.Builder
		for _, v := range cols {
			if v >= level {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		fmt.Printf("%8.1e |%s|\n", level, b.String())
	}
	fmt.Printf("%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Printf("%8s  0 ns%*s\n", "", width-5,
		fmt.Sprintf("%.0f ns", float64(len(mag))*ts*1e9))
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, " ") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func parsePoint(v string) (float64, float64, error) {
	xy := strings.SplitN(v, ",", 2)
	if len(xy) != 2 {
		return 0, 0, fmt.Errorf("want x,y, got %q", v)
	}
	x, err := strconv.ParseFloat(xy[0], 64)
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.ParseFloat(xy[1], 64)
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}
