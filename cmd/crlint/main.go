// Command crlint is the repository's project-specific static-analysis
// suite: a multichecker over the eight contract analyzers (detrand,
// nilinstr, bufalias, unitconv, shardsafe, wallclass, hotlabel,
// atomiclock — see DESIGN.md §12 and §17) built on the standard
// library's go/types so it needs nothing beyond the Go toolchain.
//
// Usage:
//
//	crlint [-list] [-json] [-audit] [package dir ...]
//
// With no arguments every package of the module is checked; each analyzer
// runs only on the packages whose contract it enforces. Diagnostics print
// as file:line:col: analyzer: message (or as a JSON array with -json);
// any diagnostic exits 1. Individual findings can be waived with a
// justified suppression comment on the offending line:
//
//	t0 := time.Now() //lint:allow detrand feeds a StripWallTime-stripped field
//
// The -audit mode inventories every //lint:allow directive in the module
// with its justification and whether it still suppresses a finding; a
// directive without a justification, or one that no longer matches any
// diagnostic (stale), exits 1. CI runs the audit so the waiver list can
// only shrink without review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
	"github.com/uwb-sim/concurrent-ranging/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	auditMode := flag.Bool("audit", false, "inventory //lint:allow directives; fail on unjustified or stale ones")
	moduleDir := flag.String("C", ".", "module root directory")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: crlint [-list] [-json] [-audit] [-C moduledir] [package dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *auditMode {
		bad, err := audit(*moduleDir, os.Stdout, *asJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
			os.Exit(2)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "crlint: %d bad suppression(s)\n", bad)
			os.Exit(1)
		}
		return
	}
	n, err := run(*moduleDir, flag.Args(), os.Stdout, *asJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "crlint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// jsonDiag is the -json wire form of one diagnostic; CI turns these into
// source-anchored annotations.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run lints the requested package directories (all module packages when
// none are given) and returns the number of diagnostics emitted.
func run(moduleDir string, dirs []string, out io.Writer, asJSON bool) (int, error) {
	root, loader, targets, err := loadTargets(moduleDir)
	if err != nil {
		return 0, err
	}
	if len(dirs) > 0 {
		want := make(map[string]bool, len(dirs))
		for _, d := range dirs {
			abs, err := filepath.Abs(d)
			if err != nil {
				return 0, err
			}
			want[abs] = true
		}
		var filtered []lint.Target
		for _, t := range targets {
			if want[t.Dir] {
				filtered = append(filtered, t)
			}
		}
		targets = filtered
	}
	found := []jsonDiag{}
	for _, t := range targets {
		applicable := analyzers.Applicable(t.Path, t.Imports)
		if len(applicable) == 0 {
			continue
		}
		pass, err := loader.LoadDir(t.Dir)
		if err != nil {
			return len(found), err
		}
		for _, d := range lint.RunAnalyzers(pass, applicable) {
			pos := loader.Fset.Position(d.Pos)
			found = append(found, jsonDiag{
				File:     relTo(root, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(found); err != nil {
			return len(found), err
		}
		return len(found), nil
	}
	for _, d := range found {
		fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	return len(found), nil
}

// jsonSup is the -audit -json wire form of one suppression directive.
type jsonSup struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Analyzer      string `json:"analyzer"`
	Justification string `json:"justification"`
	Used          bool   `json:"used"`
}

// audit inventories every //lint:allow directive in the module and
// returns the number of bad ones: directives without a justification and
// justified directives that no longer suppress any finding (stale). It
// loads every package — including those no analyzer applies to — so a
// directive left behind in unanalyzed code is still caught as stale.
func audit(moduleDir string, out io.Writer, asJSON bool) (int, error) {
	root, loader, targets, err := loadTargets(moduleDir)
	if err != nil {
		return 0, err
	}
	sups := []jsonSup{}
	bad := 0
	for _, t := range targets {
		pass, err := loader.LoadDir(t.Dir)
		if err != nil {
			return bad, err
		}
		_, ss := lint.AuditAnalyzers(pass, analyzers.Applicable(t.Path, t.Imports))
		for _, s := range ss {
			sups = append(sups, jsonSup{
				File:          relTo(root, s.File),
				Line:          s.Line,
				Analyzer:      s.Analyzer,
				Justification: s.Justification,
				Used:          s.Used,
			})
			if !s.Justified() || !s.Used {
				bad++
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sups); err != nil {
			return bad, err
		}
		return bad, nil
	}
	for _, s := range sups {
		switch {
		case s.Justification == "":
			fmt.Fprintf(out, "%s:%d: %s: UNJUSTIFIED\n", s.File, s.Line, s.Analyzer)
		case !s.Used:
			fmt.Fprintf(out, "%s:%d: %s: STALE: %s\n", s.File, s.Line, s.Analyzer, s.Justification)
		default:
			fmt.Fprintf(out, "%s:%d: %s: %s\n", s.File, s.Line, s.Analyzer, s.Justification)
		}
	}
	return bad, nil
}

// loadTargets resolves the module root and enumerates its packages.
func loadTargets(moduleDir string) (string, *lint.Loader, []lint.Target, error) {
	root, err := findModuleRoot(moduleDir)
	if err != nil {
		return "", nil, nil, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return "", nil, nil, err
	}
	targets, err := loader.Targets()
	if err != nil {
		return "", nil, nil, err
	}
	return root, loader, targets, nil
}

// relTo rewrites file as root-relative when possible, for stable output.
func relTo(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil {
		return rel
	}
	return file
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
