// Command crlint is the repository's project-specific static-analysis
// suite: a multichecker over the four contract analyzers (detrand,
// nilinstr, bufalias, unitconv — see DESIGN.md §12) built on the standard
// library's go/types so it needs nothing beyond the Go toolchain.
//
// Usage:
//
//	crlint [-list] [package dir ...]
//
// With no arguments every package of the module is checked; each analyzer
// runs only on the packages whose contract it enforces. Diagnostics print
// as file:line:col: analyzer: message; any diagnostic exits 1. Individual
// findings can be waived with a justified suppression comment on the
// offending line:
//
//	t0 := time.Now() //lint:allow detrand feeds a StripWallTime-stripped field
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/uwb-sim/concurrent-ranging/internal/lint"
	"github.com/uwb-sim/concurrent-ranging/internal/lint/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	moduleDir := flag.String("C", ".", "module root directory")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: crlint [-list] [-C moduledir] [package dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	n, err := run(*moduleDir, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crlint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "crlint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// run lints the requested package directories (all module packages when
// none are given) and returns the number of diagnostics printed.
func run(moduleDir string, dirs []string, out io.Writer) (int, error) {
	root, err := findModuleRoot(moduleDir)
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	targets, err := loader.Targets()
	if err != nil {
		return 0, err
	}
	if len(dirs) > 0 {
		want := make(map[string]bool, len(dirs))
		for _, d := range dirs {
			abs, err := filepath.Abs(d)
			if err != nil {
				return 0, err
			}
			want[abs] = true
		}
		var filtered []lint.Target
		for _, t := range targets {
			if want[t.Dir] {
				filtered = append(filtered, t)
			}
		}
		targets = filtered
	}
	total := 0
	for _, t := range targets {
		applicable := analyzers.Applicable(t.Path, t.Imports)
		if len(applicable) == 0 {
			continue
		}
		pass, err := loader.LoadDir(t.Dir)
		if err != nil {
			return total, err
		}
		for _, d := range lint.RunAnalyzers(pass, applicable) {
			pos := loader.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = rel
			}
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
			total++
		}
	}
	return total, nil
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
