package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSelfRunClean lints the whole repository: the tree must carry zero
// diagnostics, so every contract the suite enforces is known to hold on
// the code as committed (and the loader is exercised over every module
// package).
func TestSelfRunClean(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(root, nil, &buf)
	if err != nil {
		t.Fatalf("crlint run: %v", err)
	}
	if n != 0 {
		t.Errorf("crlint found %d diagnostic(s) in the repository:\n%s", n, buf.String())
	}
}

// TestRunSingleDir checks directory filtering: pointing crlint at one
// package lints only that package.
func TestRunSingleDir(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(root, []string{filepath.Join(root, "internal", "dw1000")}, &buf)
	if err != nil {
		t.Fatalf("crlint run: %v", err)
	}
	if n != 0 {
		t.Errorf("crlint found %d diagnostic(s) in internal/dw1000:\n%s", n, buf.String())
	}
}

// TestFindModuleRoot pins the root discovery used by both entry points:
// the test runs from cmd/crlint, so the module root is two levels up.
func TestFindModuleRoot(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if root != abs {
		t.Errorf("findModuleRoot(.) = %q, want %q", root, abs)
	}
}
