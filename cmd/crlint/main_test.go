package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestSelfRunClean lints the whole repository: the tree must carry zero
// diagnostics, so every contract the suite enforces is known to hold on
// the code as committed (and the loader is exercised over every module
// package).
func TestSelfRunClean(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(root, nil, &buf, false)
	if err != nil {
		t.Fatalf("crlint run: %v", err)
	}
	if n != 0 {
		t.Errorf("crlint found %d diagnostic(s) in the repository:\n%s", n, buf.String())
	}
}

// TestRunSingleDir checks directory filtering: pointing crlint at one
// package lints only that package.
func TestRunSingleDir(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(root, []string{filepath.Join(root, "internal", "dw1000")}, &buf, false)
	if err != nil {
		t.Fatalf("crlint run: %v", err)
	}
	if n != 0 {
		t.Errorf("crlint found %d diagnostic(s) in internal/dw1000:\n%s", n, buf.String())
	}
}

// TestRunJSON pins the -json contract CI depends on: the output is a
// well-formed JSON array of diagnostics even when the array is empty, so
// the annotation step can always parse it.
func TestRunJSON(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := run(root, []string{filepath.Join(root, "internal", "dw1000")}, &buf, true)
	if err != nil {
		t.Fatalf("crlint run: %v", err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(diags) != n {
		t.Errorf("run returned %d diagnostics but emitted %d", n, len(diags))
	}
}

// TestAuditClean audits the repository's suppression inventory: every
// //lint:allow directive in the tree must carry a justification and
// still suppress a live finding. A stale or bare directive fails here
// before it fails in CI.
func TestAuditClean(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bad, err := audit(root, &buf, false)
	if err != nil {
		t.Fatalf("crlint audit: %v", err)
	}
	if bad != 0 {
		t.Errorf("crlint audit found %d bad suppression(s):\n%s", bad, buf.String())
	}
	if buf.Len() == 0 {
		t.Error("crlint audit listed no suppressions; the repository is known to carry justified ones")
	}
}

// TestAuditJSON checks the machine-readable audit listing: every entry
// is justified and used, and the known detrand waivers appear.
func TestAuditJSON(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bad, err := audit(root, &buf, true)
	if err != nil {
		t.Fatalf("crlint audit: %v", err)
	}
	if bad != 0 {
		t.Errorf("crlint audit found %d bad suppression(s)", bad)
	}
	var sups []jsonSup
	if err := json.Unmarshal(buf.Bytes(), &sups); err != nil {
		t.Fatalf("-audit -json output is not a JSON array: %v\n%s", err, buf.String())
	}
	byAnalyzer := map[string]int{}
	for _, s := range sups {
		byAnalyzer[s.Analyzer]++
		if s.Justification == "" {
			t.Errorf("%s:%d: %s suppression has no justification", s.File, s.Line, s.Analyzer)
		}
		if !s.Used {
			t.Errorf("%s:%d: %s suppression is stale", s.File, s.Line, s.Analyzer)
		}
	}
	if byAnalyzer["detrand"] == 0 {
		t.Errorf("audit listed no detrand suppressions, want the known instrument/profile waivers; got %v", byAnalyzer)
	}
}

// TestFindModuleRoot pins the root discovery used by both entry points:
// the test runs from cmd/crlint, so the module root is two levels up.
func TestFindModuleRoot(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if root != abs {
		t.Errorf("findModuleRoot(.) = %q, want %q", root, abs)
	}
}
