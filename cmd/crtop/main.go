// Command crtop is a terminal dashboard for long-running crbench/crsim
// processes: it polls the debug server's live snapshot endpoint
// (/debug/metrics.json, served by -pprof) and renders campaign progress,
// windowed throughput and latency quantiles, detector and batch-engine
// load, simulator and ranging tallies, and flight-recorder span counts.
//
// Usage:
//
//	crbench -pprof 127.0.0.1:6060 -trials 100000 campaign &
//	crtop -addr 127.0.0.1:6060
//
// crtop repaints once per -interval until interrupted (or for -frames
// repaints); -once renders a single frame without clearing the screen,
// which is also the mode to use when piping output.
//
// A second mode, -check file-or-URL, validates a Prometheus /metrics
// scrape against the exposition invariants the repo's writer promises
// (parseable lines, name-sorted families, HELP/TYPE present, complete
// histograms) and exits non-zero on violation; CI feeds a live scrape
// through it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	cfg := config{Stdout: os.Stdout, Stderr: os.Stderr}
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:6060", "debug server `address` of a running crbench/crsim -pprof process")
	flag.DurationVar(&cfg.Interval, "interval", time.Second, "repaint interval")
	flag.IntVar(&cfg.Frames, "frames", 0, "stop after N repaints (0 = run until interrupted)")
	flag.BoolVar(&cfg.Once, "once", false, "render one frame without clearing the screen and exit")
	flag.StringVar(&cfg.Check, "check", "", "validate a Prometheus scrape from this `file-or-URL` and exit")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "crtop:", err)
		os.Exit(1)
	}
}

// config collects the flag-derived settings so tests can drive run
// without a process.
type config struct {
	Addr     string
	Interval time.Duration
	Frames   int
	Once     bool
	Check    string
	Stdout   io.Writer
	Stderr   io.Writer
}

func run(cfg config) error {
	if cfg.Check != "" {
		return checkExposition(cfg.Check, cfg.Stdout)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + cfg.Addr + "/debug/metrics.json"
	frames := cfg.Frames
	if cfg.Once {
		frames = 1
	}
	var prev obs.Snapshot
	havePrev := false
	lastPoll := time.Now()
	for n := 0; frames == 0 || n < frames; n++ {
		if n > 0 {
			time.Sleep(cfg.Interval)
		}
		cur, err := fetchSnapshot(client, url)
		if err != nil {
			// A long campaign's debug server disappears when the run
			// finishes; treat that as a clean end after at least one frame.
			if havePrev {
				fmt.Fprintf(cfg.Stderr, "crtop: %s gone (%v); exiting\n", cfg.Addr, err)
				return nil
			}
			return err
		}
		now := time.Now()
		dt := now.Sub(lastPoll).Seconds()
		lastPoll = now
		if !cfg.Once {
			// Home the cursor and clear to end of screen: a repaint, not a
			// scroll.
			fmt.Fprint(cfg.Stdout, "\x1b[H\x1b[2J")
		}
		var prevp *obs.Snapshot
		if havePrev {
			prevp = &prev
		}
		fmt.Fprint(cfg.Stdout, render(prevp, cur, dt, cfg.Addr))
		prev, havePrev = cur, true
	}
	return nil
}

// fetchSnapshot polls one live metrics snapshot.
func fetchSnapshot(client *http.Client, url string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decoding %s: %w", url, err)
	}
	return snap, nil
}

// checkExposition validates a Prometheus text scrape read from a file
// path or an http(s) URL.
func checkExposition(src string, out io.Writer) error {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(src)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("%s: %s", src, resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		r = f
	}
	defer r.Close()
	if err := obs.CheckPrometheusText(r); err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	fmt.Fprintf(out, "crtop: %s: exposition ok\n", src)
	return nil
}

// render draws one dashboard frame from the current snapshot; prev (the
// previous frame's snapshot, nil on the first frame) and dt feed the
// instantaneous between-poll rates shown next to the windowed ones. It is
// a pure function of its inputs, so tests assert on frames directly.
func render(prev *obs.Snapshot, cur obs.Snapshot, dt float64, addr string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crtop — %s\n\n", addr)

	// Campaign: live progress gauges plus the trial-rate window.
	done, okD := cur.GaugeValue(experiments.MetricCampaignDoneLive)
	total, okT := cur.GaugeValue(experiments.MetricCampaignTotalLive)
	trials := cur.CounterValue(experiments.MetricTrials)
	if okD && okT && total > 0 {
		fmt.Fprintf(&b, "Campaign   %s %.0f/%.0f (%.0f%%)\n",
			bar(done/total, 24), done, total, 100*done/total)
	} else {
		fmt.Fprintf(&b, "Campaign   (no live campaign gauges)\n")
	}
	line := fmt.Sprintf("  trials %d", trials)
	if w, ok := cur.WindowByName(experiments.MetricTrials); ok {
		line += fmt.Sprintf("   %s trials/s (%.0fs window)", fmtRate(w.SumRatePerSecond), windowSpan(w))
	}
	if r, ok := deltaRate(prev, cur, experiments.MetricTrials, dt); ok {
		line += fmt.Sprintf("   %s trials/s (now)", fmtRate(r))
	}
	b.WriteString(line + "\n\n")

	// Throughput: batch CIRs and detect calls.
	b.WriteString("Throughput")
	any := false
	if w, ok := cur.WindowByName(core.MetricBatchCIRs); ok {
		fmt.Fprintf(&b, "   batch %s CIRs/s", fmtRate(w.SumRatePerSecond))
		any = true
	}
	if w, ok := cur.WindowByName(core.MetricDetectCalls); ok {
		fmt.Fprintf(&b, "   detect %s calls/s", fmtRate(w.SumRatePerSecond))
		any = true
	}
	if !any {
		b.WriteString("   (no windowed throughput metrics)")
	}
	b.WriteString("\n")

	// Latency: moving trial-time quantiles over the window ring, falling
	// back to the all-time histogram.
	if w, ok := cur.WindowByName(experiments.MetricTrialSeconds); ok && w.P50 != nil {
		fmt.Fprintf(&b, "Latency    trial p50 %s  p95 %s  p99 %s (%.0fs window)\n",
			fmtSeconds(*w.P50), fmtSeconds(deref(w.P95)), fmtSeconds(deref(w.P99)), windowSpan(w))
	} else if h, ok := cur.HistogramByName(experiments.MetricTrialSeconds); ok && h.Count > 0 {
		fmt.Fprintf(&b, "Latency    trial p50 %s  p95 %s  p99 %s (all-time)\n",
			fmtSeconds(deref(h.P50)), fmtSeconds(deref(h.P95)), fmtSeconds(deref(h.P99)))
	}
	b.WriteString("\n")

	// Detector: call and template-eval totals plus the per-bank split.
	fmt.Fprintf(&b, "Detector   calls %d   template evals %d\n",
		cur.CounterValue(core.MetricDetectCalls), cur.CounterValue(core.MetricDetectTemplateEvals))
	for _, s := range cur.CounterSeries(core.MetricDetectCallsByBank) {
		fmt.Fprintf(&b, "  bank{%s} %d calls\n", labelString(s.Labels), s.Value)
	}

	// Batch engine: batches/CIRs/errors and the per-worker partition.
	fmt.Fprintf(&b, "Batch      batches %d   cirs %d   errors %d\n",
		cur.CounterValue(core.MetricBatchBatches), cur.CounterValue(core.MetricBatchCIRs),
		cur.CounterValue(core.MetricBatchErrors))
	if workers := cur.CounterSeries(core.MetricBatchWorkerItems); len(workers) > 0 {
		b.WriteString("  workers")
		for _, s := range workers {
			fmt.Fprintf(&b, "  %s:%d", labelString(s.Labels), s.Value)
		}
		b.WriteString("\n")
	}

	// Simulator: frame/reception tallies with the labeled regime split.
	fmt.Fprintf(&b, "Sim        frames %d   receptions %d", cur.CounterValue(sim.MetricFramesOnAir),
		cur.CounterValue(sim.MetricReceptions))
	if kinds := cur.CounterSeries(sim.MetricReceptionsByKind); len(kinds) > 0 {
		parts := make([]string, len(kinds))
		for i, s := range kinds {
			parts[i] = fmt.Sprintf("%s %d", labelString(s.Labels), s.Value)
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "   collisions %d   decode failures %d\n",
		cur.CounterValue(sim.MetricCollisions), cur.CounterValue(sim.MetricDecodeFailures))

	// Ranging: detection success rate and round outcomes.
	expected := cur.CounterValue(ranging.MetricRespondersExpected)
	found := cur.CounterValue(ranging.MetricRespondersFound)
	fmt.Fprintf(&b, "Ranging    found %d/%d", found, expected)
	if expected > 0 {
		fmt.Fprintf(&b, " (%.1f%%)", 100*float64(found)/float64(expected))
	}
	fmt.Fprintf(&b, "   round errors %d", cur.CounterValue(ranging.MetricRoundErrors))
	if rounds := cur.CounterSeries(ranging.MetricRounds); len(rounds) > 0 {
		b.WriteString("   rounds")
		for _, s := range rounds {
			fmt.Fprintf(&b, " %s:%d", labelString(s.Labels), s.Value)
		}
	}
	b.WriteString("\n")

	// Engine: the sharded-engine profiler's live gauges — barrier-window
	// and bus progress, running parallel efficiency, swarm round volume,
	// and one occupancy bar per worker slot.
	if windows, ok := cur.GaugeValue(sim.MetricEngineWindowsLive); ok {
		bus, _ := cur.GaugeValue(sim.MetricEngineBusLive)
		fmt.Fprintf(&b, "Engine     windows %.0f   bus msgs %.0f", windows, bus)
		if eff, ok := cur.GaugeValue(sim.MetricEngineEfficiencyLive); ok {
			fmt.Fprintf(&b, "   efficiency %.1f%%", 100*eff)
		}
		if rounds := cur.CounterValue(sim.MetricSwarmRoundsLive); rounds > 0 {
			fmt.Fprintf(&b, "   swarm rounds %d", rounds)
		}
		b.WriteString("\n")
		for _, g := range cur.GaugeSeries(sim.MetricEngineWorkerOccupancyLive) {
			if len(g.Labels) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s %s %5.1f%%\n",
				labelString(g.Labels), bar(g.Value/100, 24), g.Value)
		}
	}

	// Flight recorder: span/event volume, with the busiest span classes.
	spans := cur.CounterSeries(trace.MetricSpans)
	if len(spans) > 0 || cur.CounterValue(trace.MetricEvents) > 0 {
		fmt.Fprintf(&b, "Trace      spans %d   events %d   sampled out %d\n",
			cur.CounterValue(trace.MetricSpans), cur.CounterValue(trace.MetricEvents),
			cur.CounterValue(trace.MetricSampledOut))
		for _, s := range topSeries(spans, 4) {
			fmt.Fprintf(&b, "  span{%s} %d\n", labelString(s.Labels), s.Value)
		}
	}
	return b.String()
}

// deltaRate computes the between-poll rate of a counter family, when a
// previous snapshot exists and time advanced.
func deltaRate(prev *obs.Snapshot, cur obs.Snapshot, name string, dt float64) (float64, bool) {
	if prev == nil || dt <= 0 {
		return 0, false
	}
	d := cur.CounterValue(name) - prev.CounterValue(name)
	if d < 0 { // the process restarted between polls
		return 0, false
	}
	return float64(d) / dt, true
}

// topSeries returns the n largest series of a family, ties broken by the
// snapshot's label order.
func topSeries(series []obs.CounterSnapshot, n int) []obs.CounterSnapshot {
	out := make([]obs.CounterSnapshot, len(series))
	copy(out, series)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// labelString renders a series' labels as k=v pairs.
func labelString(labels []obs.Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// windowSpan is the ring's covered duration in seconds.
func windowSpan(w obs.WindowSnapshot) float64 {
	return w.WidthSeconds * float64(len(w.Points))
}

// bar renders a fixed-width progress bar for frac in [0, 1].
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac * float64(width))
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

// fmtRate renders a per-second rate with sensible precision.
func fmtRate(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtSeconds renders a duration in seconds with unit scaling.
func fmtSeconds(v float64) string {
	switch {
	case v <= 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

// deref unwraps an optional quantile (0 when absent).
func deref(p *float64) float64 {
	if p == nil {
		return 0
	}
	return *p
}
