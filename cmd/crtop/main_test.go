package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/sim"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

// populatedRegistry builds a registry resembling a mid-campaign crbench
// process: live gauges, plain and labeled counters, a watched window, and
// a trial-time histogram.
func populatedRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Watch(experiments.MetricTrials, obs.WindowConfig{})
	reg.Watch(experiments.MetricTrialSeconds, obs.WindowConfig{})
	reg.SetGauge(experiments.MetricCampaignDoneLive, 40)
	reg.SetGauge(experiments.MetricCampaignTotalLive, 100)
	for i := 0; i < 40; i++ {
		reg.Count(experiments.MetricTrials, 1)
		reg.Observe(experiments.MetricTrialSeconds, 0.002)
	}
	reg.Count(core.MetricDetectCalls, 120)
	reg.Count(core.MetricDetectTemplateEvals, 480)
	reg.Count(core.MetricBatchBatches, 3)
	reg.Count(core.MetricBatchCIRs, 120)
	reg.Count(sim.MetricFramesOnAir, 160)
	reg.Count(sim.MetricReceptions, 150)
	reg.Count(ranging.MetricRespondersExpected, 120)
	reg.Count(ranging.MetricRespondersFound, 111)
	reg.CounterVec(core.MetricDetectCallsByBank, "templates").With("4").Add(120)
	reg.CounterVec(core.MetricBatchWorkerItems, "worker").With("0").Add(60)
	reg.CounterVec(core.MetricBatchWorkerItems, "worker").With("1").Add(60)
	reg.CounterVec(sim.MetricReceptionsByKind, "kind").With("single").Add(110)
	reg.CounterVec(sim.MetricReceptionsByKind, "kind").With("concurrent").Add(40)
	reg.CounterVec(ranging.MetricRounds, "outcome").With("ok").Add(39)
	reg.CounterVec(ranging.MetricRounds, "outcome").With("error").Add(1)
	reg.SetGauge(sim.MetricEngineWindowsLive, 12)
	reg.SetGauge(sim.MetricEngineBusLive, 34)
	reg.SetGauge(sim.MetricEngineEfficiencyLive, 0.625)
	reg.GaugeVec(sim.MetricEngineWorkerOccupancyLive, "worker").With("0").Set(80)
	reg.GaugeVec(sim.MetricEngineWorkerOccupancyLive, "worker").With("1").Set(45)
	reg.Count(sim.MetricSwarmRoundsLive, 25)
	return reg
}

func TestRenderSections(t *testing.T) {
	snap := populatedRegistry(t).Snapshot()
	frame := render(nil, snap, 0, "127.0.0.1:0")
	for _, want := range []string{
		"Campaign", "40/100 (40%)", "trials 40",
		"Throughput", "Latency", "trial p50",
		"Detector   calls 120", "bank{templates=4} 120 calls",
		"Batch      batches 3   cirs 120",
		"worker=0:60", "worker=1:60",
		"Sim        frames 160", "kind=concurrent 40",
		"Ranging    found 111/120 (92.5%)", "outcome=error:1", "outcome=ok:39",
		"Engine     windows 12   bus msgs 34   efficiency 62.5%   swarm rounds 25",
		"worker=0", "80.0%", "worker=1", "45.0%",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatalf("render emitted ANSI control codes; those belong to run:\n%s", frame)
	}
}

func TestRenderDeltaRate(t *testing.T) {
	reg := populatedRegistry(t)
	prev := reg.Snapshot()
	reg.Count(experiments.MetricTrials, 10)
	cur := reg.Snapshot()
	frame := render(&prev, cur, 2.0, "x")
	if !strings.Contains(frame, "5.0 trials/s (now)") {
		t.Fatalf("frame missing between-poll rate:\n%s", frame)
	}
}

// TestRunOnceAgainstLiveServer is the end-to-end path: a debug server over
// a recording registry, polled through run's -once mode.
func TestRunOnceAgainstLiveServer(t *testing.T) {
	reg := populatedRegistry(t)
	srv, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out, errw strings.Builder
	cfg := config{Addr: srv.Addr, Interval: time.Millisecond, Once: true, Stdout: &out, Stderr: &errw}
	if err := run(cfg); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	frame := out.String()
	for _, want := range []string{"crtop — " + srv.Addr, "Campaign", "Detector   calls 120"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("live frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatalf("-once mode must not clear the screen:\n%s", frame)
	}
}

func TestRunUnreachable(t *testing.T) {
	cfg := config{Addr: "127.0.0.1:1", Once: true, Stdout: &strings.Builder{}, Stderr: &strings.Builder{}}
	if err := run(cfg); err == nil {
		t.Fatal("run against an unreachable address should fail on the first frame")
	}
}

func TestCheckExposition(t *testing.T) {
	reg := populatedRegistry(t)
	srv, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// URL mode against the live /metrics endpoint.
	var out strings.Builder
	if err := run(config{Check: "http://" + srv.Addr + "/metrics", Stdout: &out}); err != nil {
		t.Fatalf("check live scrape: %v", err)
	}
	if !strings.Contains(out.String(), "exposition ok") {
		t.Fatalf("check output = %q", out.String())
	}

	// File mode round-trip through the writer.
	var text strings.Builder
	if err := obs.WritePrometheus(&text, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := os.WriteFile(path, []byte(text.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(config{Check: path, Stdout: &out}); err != nil {
		t.Fatalf("check file scrape: %v", err)
	}

	// A malformed scrape must fail.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("no_help_or_type 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{Check: bad, Stdout: &out}); err == nil {
		t.Fatal("malformed scrape passed -check")
	}
}
