package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"warpdrive"}, 1, 1)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v", err)
	}
}

func TestEveryListedExperimentHasARunner(t *testing.T) {
	for _, name := range order {
		if _, ok := runners[name]; !ok {
			t.Errorf("experiment %q listed but has no runner", name)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("%d listed vs %d registered", len(order), len(runners))
	}
}

func TestRunFastExperiments(t *testing.T) {
	// The arithmetic-only experiments complete instantly and exercise the
	// whole dispatch path.
	if err := run([]string{"sec3", "sec7", "sec8", "fig5"}, 1, 1); err != nil {
		t.Fatal(err)
	}
}
