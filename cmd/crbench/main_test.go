package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

func testConfig(trials int, seed uint64) runConfig {
	return runConfig{Trials: trials, Seed: seed, Stdout: io.Discard, Stderr: io.Discard}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	_, err := run([]string{"warpdrive"}, testConfig(1, 1))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("got %v", err)
	}
}

func TestEveryListedExperimentHasARunner(t *testing.T) {
	for _, name := range order {
		if _, ok := runners[name]; !ok {
			t.Errorf("experiment %q listed but has no runner", name)
		}
	}
	if len(order) != len(runners) {
		t.Errorf("%d listed vs %d registered", len(order), len(runners))
	}
}

func TestPackageDocListsEveryExperiment(t *testing.T) {
	// The doc comment's experiment list must track the order slice
	// ("capture" was once missing from it).
	data, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, found := strings.Cut(string(data), "package main")
	if !found {
		t.Fatal("no package clause in main.go")
	}
	for _, name := range order {
		if !strings.Contains(doc, name) {
			t.Errorf("package doc does not mention experiment %q", name)
		}
	}
}

func TestRunFastExperiments(t *testing.T) {
	// The arithmetic-only experiments complete instantly and exercise the
	// whole dispatch path.
	report, err := run([]string{"sec3", "sec7", "sec8", "fig5"}, testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != 4 {
		t.Fatalf("%d experiment entries, want 4", len(report.Experiments))
	}
	for _, e := range report.Experiments {
		if e.OutputBytes == 0 {
			t.Errorf("experiment %s rendered no output", e.Name)
		}
	}
}

func TestRunWritesValidReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	cfg := testConfig(3, 1)
	cfg.JSONPath = path
	if _, err := run([]string{"sec5", "campaign"}, cfg); err != nil {
		t.Fatal(err)
	}
	report, err := obs.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	if report.Tool != "crbench" || report.Trials != 3 || report.Seed != 1 {
		t.Fatalf("report header %+v", report)
	}
	// The smoke pair must populate simulator counters and trial timing.
	if got := report.Metrics.CounterValue("sim.frames_on_air"); got == 0 {
		t.Error("sim.frames_on_air is zero")
	}
	if h, ok := report.Metrics.HistogramByName("experiments.trial_seconds"); !ok || h.Count == 0 {
		t.Error("experiments.trial_seconds histogram missing or empty")
	}
}

func TestReportDeterministicModuloWallTime(t *testing.T) {
	once := func() []byte {
		report, err := run([]string{"sec5", "campaign"}, testConfig(3, 7))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(report.StripWallTime())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := once(), once()
	if !bytes.Equal(a, b) {
		t.Fatalf("stripped reports differ:\n%s\n---\n%s", a, b)
	}
}

func TestJSONStdoutModeKeepsStdoutPure(t *testing.T) {
	// With -json - the report owns stdout: tables and progress all go to
	// stderr, and stdout must parse as exactly one JSON report so
	// `crbench -json - | reportcheck -` works.
	var stdout, stderr bytes.Buffer
	cfg := runConfig{Trials: 2, Seed: 1, JSONPath: "-", Progress: true,
		Stdout: &stdout, Stderr: &stderr}
	if _, err := run([]string{"sec5", "campaign"}, cfg); err != nil {
		t.Fatal(err)
	}

	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	var report obs.RunReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("stdout carries more than the report (next decode: %v):\n%s", err, stdout.String())
	}

	// The human-facing output still exists — on stderr.
	errOut := stderr.String()
	if !strings.Contains(errOut, "sec5") || !strings.Contains(errOut, "trials") {
		t.Fatalf("stderr lost the tables/progress stream: %q", errOut)
	}
}

func TestProgressPrinterWritesToSink(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig(4, 1)
	cfg.Progress = true
	cfg.Stderr = &buf
	if _, err := run([]string{"sec5"}, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sec5") || !strings.Contains(out, "/12 trials") {
		t.Fatalf("progress stream missing expected content: %q", out)
	}
}
