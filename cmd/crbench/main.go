// Command crbench regenerates the tables and figures of "Concurrent
// Ranging with Ultra-Wideband Radios" (Großwindhager et al., ICDCS 2018)
// from the simulation.
//
// Usage:
//
//	crbench [-trials N] [-seed S] [experiment ...]
//
// Experiments: fig1 fig2 sec3 fig4 fig5 sec5 fig6 table1 sec6 sec7 fig8
// sec8 campaign ablation. Running without arguments executes all of them. The
// -trials flag scales the Monte-Carlo experiments: 0 keeps each
// experiment's paper-faithful default (e.g. 5000 SS-TWR operations for
// Sect. V), smaller values give quick previews.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
)

type runner func(trials int, seed uint64) (string, error)

var runners = map[string]runner{
	"fig1": func(int, uint64) (string, error) {
		r, err := experiments.Fig1()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig2": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Fig2(seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec3": func(int, uint64) (string, error) {
		d, err := experiments.Sec3Delay()
		if err != nil {
			return "", err
		}
		m, err := experiments.Sec3Messages(nil)
		if err != nil {
			return "", err
		}
		return d.Render() + m.Render(), nil
	},
	"fig4": func(trials int, seed uint64) (string, error) {
		real, err := experiments.Fig4(experiments.Fig4Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		ideal, err := experiments.Fig4(experiments.Fig4Config{
			Trials: trials, Seed: seed, IdealTransceiver: true,
		})
		if err != nil {
			return "", err
		}
		return "--- DW1000 delayed-TX quantization ---\n" + real.Render() +
			"--- ideal transceiver ---\n" + ideal.Render(), nil
	},
	"fig5": func(int, uint64) (string, error) {
		r, err := experiments.Fig5()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec5": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Sec5(experiments.Sec5Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig6": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Fig6(seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table1": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Table1(experiments.Table1Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec6": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Sec6(experiments.Sec6Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec7": func(int, uint64) (string, error) {
		r, err := experiments.Sec7(nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig8": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Fig8(experiments.Fig8Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec8": func(int, uint64) (string, error) {
		r, err := experiments.Sec8()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"campaign": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Campaign(nil, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"capture": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Capture(trials, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"ablation": func(trials int, seed uint64) (string, error) {
		up, err := experiments.AblationUpsample(trials, seed)
		if err != nil {
			return "", err
		}
		q, err := experiments.AblationQuantization(trials, seed)
		if err != nil {
			return "", err
		}
		th, err := experiments.AblationThreshold(trials, seed)
		if err != nil {
			return "", err
		}
		ref, err := experiments.AblationRefinement(trials, seed)
		if err != nil {
			return "", err
		}
		sp, err := experiments.AblationSlotPlan(trials, seed)
		if err != nil {
			return "", err
		}
		return up.Render() + q.Render() + th.Render() + ref.Render() + sp.Render(), nil
	},
}

// order lists the experiments in paper order for the run-everything mode.
var order = []string{
	"fig1", "fig2", "sec3", "fig4", "fig5", "sec5", "fig6",
	"table1", "sec6", "sec7", "fig8", "sec8", "campaign", "capture", "ablation",
}

func main() {
	trials := flag.Int("trials", 0, "Monte-Carlo trials per experiment (0 = paper-faithful defaults)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crbench [-trials N] [-seed S] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s (default: all)\n", strings.Join(order, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = order
	}
	if err := run(names, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "crbench:", err)
		os.Exit(1)
	}
}

func run(names []string, trials int, seed uint64) error {
	for _, name := range names {
		r, ok := runners[strings.ToLower(name)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: %s)", name, strings.Join(order, " "))
		}
		out, err := r(trials, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Print(out)
		fmt.Println()
	}
	return nil
}
