// Command crbench regenerates the tables and figures of "Concurrent
// Ranging with Ultra-Wideband Radios" (Großwindhager et al., ICDCS 2018)
// from the simulation.
//
// Usage:
//
//	crbench [-trials N] [-seed S] [-json path] [-progress] [-pprof addr] [experiment ...]
//
// Experiments: fig1 fig2 sec3 fig4 fig5 sec5 fig6 table1 sec6 sec7 fig8
// sec8 campaign capture fullbank swarm ablation. Running without arguments
// executes all of them. The -trials flag scales the Monte-Carlo experiments: 0 keeps each
// experiment's paper-faithful default (e.g. 5000 SS-TWR operations for
// Sect. V), smaller values give quick previews.
//
// Observability:
//
//   - -json path writes a machine-readable run report: per-experiment wall
//     time and output size, the full metrics snapshot (detector diagnostics,
//     simulator frame/collision counters, per-trial timing histograms,
//     labeled per-experiment/worker series, windowed throughput rings), and
//     Go runtime stats. The report is deterministic for a fixed seed and
//     trial count once wall-time fields are stripped. -json - writes the
//     report to stdout and moves the rendered tables to stderr, so piped
//     consumers see exactly one JSON document (progress always goes to
//     stderr).
//   - -progress streams live trial progress (done/total, ETA) to stderr.
//   - -pprof addr serves the debug surface on the given address for the
//     run's duration: net/http/pprof, expvar (/debug/vars exposes the
//     metrics registry as "crmetrics"), Prometheus text exposition on
//     /metrics, and the live JSON snapshot on /debug/metrics.json (poll it
//     with crtop). Use addr "localhost:0" for an ephemeral port.
//   - -tracefile path streams the detection flight recorder to a JSONL
//     trace: campaign/round spans with ground truth plus one structured
//     event per detector search-and-subtract iteration. -trace-sample N
//     records every Nth root span (campaigns stream millions of events
//     otherwise). Analyze with crtrace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/core"
	"github.com/uwb-sim/concurrent-ranging/internal/experiments"
	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

type runner func(trials int, seed uint64) (string, error)

var runners = map[string]runner{
	"fig1": func(int, uint64) (string, error) {
		r, err := experiments.Fig1()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig2": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Fig2(seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec3": func(int, uint64) (string, error) {
		d, err := experiments.Sec3Delay()
		if err != nil {
			return "", err
		}
		m, err := experiments.Sec3Messages(nil)
		if err != nil {
			return "", err
		}
		return d.Render() + m.Render(), nil
	},
	"fig4": func(trials int, seed uint64) (string, error) {
		real, err := experiments.Fig4(experiments.Fig4Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		ideal, err := experiments.Fig4(experiments.Fig4Config{
			Trials: trials, Seed: seed, IdealTransceiver: true,
		})
		if err != nil {
			return "", err
		}
		return "--- DW1000 delayed-TX quantization ---\n" + real.Render() +
			"--- ideal transceiver ---\n" + ideal.Render(), nil
	},
	"fig5": func(int, uint64) (string, error) {
		r, err := experiments.Fig5()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec5": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Sec5(experiments.Sec5Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig6": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Fig6(seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table1": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Table1(experiments.Table1Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec6": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Sec6(experiments.Sec6Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec7": func(int, uint64) (string, error) {
		r, err := experiments.Sec7(nil)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig8": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Fig8(experiments.Fig8Config{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"sec8": func(int, uint64) (string, error) {
		r, err := experiments.Sec8()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"campaign": func(_ int, seed uint64) (string, error) {
		r, err := experiments.Campaign(nil, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"capture": func(trials int, seed uint64) (string, error) {
		r, err := experiments.Capture(trials, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fullbank": func(trials int, seed uint64) (string, error) {
		r, err := experiments.FullBank(experiments.FullBankConfig{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"swarm": func(trials int, seed uint64) (string, error) {
		r, err := experiments.SwarmScale(experiments.SwarmScaleConfig{Trials: trials, Seed: seed})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"ablation": func(trials int, seed uint64) (string, error) {
		up, err := experiments.AblationUpsample(trials, seed)
		if err != nil {
			return "", err
		}
		q, err := experiments.AblationQuantization(trials, seed)
		if err != nil {
			return "", err
		}
		th, err := experiments.AblationThreshold(trials, seed)
		if err != nil {
			return "", err
		}
		ref, err := experiments.AblationRefinement(trials, seed)
		if err != nil {
			return "", err
		}
		sp, err := experiments.AblationSlotPlan(trials, seed)
		if err != nil {
			return "", err
		}
		return up.Render() + q.Render() + th.Render() + ref.Render() + sp.Render(), nil
	},
}

// order lists the experiments in paper order for the run-everything mode.
var order = []string{
	"fig1", "fig2", "sec3", "fig4", "fig5", "sec5", "fig6",
	"table1", "sec6", "sec7", "fig8", "sec8", "campaign", "capture",
	"fullbank", "swarm", "ablation",
}

func main() {
	trials := flag.Int("trials", 0, "Monte-Carlo trials per experiment (0 = paper-faithful defaults)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonPath := flag.String("json", "", "write a machine-readable run report to this `path`")
	progress := flag.Bool("progress", false, "stream live trial progress to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this `address`")
	traceFile := flag.String("tracefile", "", "stream the detection flight recorder to this JSONL `file` (analyze with crtrace)")
	traceSample := flag.Int("trace-sample", 1, "record every Nth root span in the flight recorder")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: crbench [-trials N] [-seed S] [-json path] [-progress] [-pprof addr] [-tracefile path] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s (default: all)\n", strings.Join(order, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = order
	}
	cfg := runConfig{
		Trials:      *trials,
		Seed:        *seed,
		JSONPath:    *jsonPath,
		Progress:    *progress,
		PprofAddr:   *pprofAddr,
		TraceFile:   *traceFile,
		TraceSample: *traceSample,
		Stdout:      os.Stdout,
		Stderr:      os.Stderr,
	}
	if _, err := run(names, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "crbench:", err)
		os.Exit(1)
	}
}

// runConfig collects the flag-derived settings so tests can drive run
// without a process.
type runConfig struct {
	Trials      int
	Seed        uint64
	JSONPath    string
	Progress    bool
	PprofAddr   string
	TraceFile   string
	TraceSample int
	Stdout      io.Writer
	Stderr      io.Writer
}

// run executes the named experiments under full instrumentation and
// returns the populated run report (also written to cfg.JSONPath when
// set). Unknown names fail before any experiment does work.
func run(names []string, cfg runConfig) (report *obs.RunReport, err error) {
	selected := make([]runner, len(names))
	for i, name := range names {
		r, ok := runners[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (have: %s)", name, strings.Join(order, " "))
		}
		selected[i] = r
	}

	reg := obs.NewRegistry()
	// Window rings behind the live-rate and moving-quantile views (crtop,
	// the report's final throughput series): campaign trial rate, batch
	// CIR throughput, detect-call rate, and the trial-latency quantiles.
	for _, name := range []string{
		experiments.MetricTrials,
		core.MetricBatchCIRs,
		core.MetricDetectCalls,
		experiments.MetricTrialSeconds,
	} {
		reg.Watch(name, obs.WindowConfig{})
	}
	if cfg.PprofAddr != "" {
		dbg, err := obs.ServeDebug(cfg.PprofAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(cfg.Stderr, "crbench: debug server on http://%s/debug/pprof/ (/metrics, /debug/metrics.json)\n", dbg.Addr)
	}
	var flight *trace.Tracer
	if cfg.TraceFile != "" {
		f, ferr := os.Create(cfg.TraceFile)
		if ferr != nil {
			return nil, fmt.Errorf("tracefile: %w", ferr)
		}
		flight = trace.New(trace.Config{Writer: f, SampleEvery: cfg.TraceSample})
		flight.SetMetrics(reg)
		defer func() {
			ferr := flight.Flush()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil && err == nil {
				report, err = nil, fmt.Errorf("tracefile: %w", ferr)
			}
			st := flight.Stats()
			fmt.Fprintf(cfg.Stderr, "crbench: trace: %d events, %d/%d root spans sampled -> %s\n",
				st.Events, st.RootSpans-st.SampledOut, st.RootSpans, cfg.TraceFile)
		}()
	}
	printer := newProgressPrinter(cfg.Stderr, cfg.Progress)
	experiments.SetInstrumentation(&experiments.Instrumentation{
		Recorder: reg,
		Progress: printer.update,
		Flight:   flight,
	})
	defer experiments.SetInstrumentation(nil)

	// -json - dedicates stdout to the report alone; the rendered tables
	// move to stderr so piped consumers parse exactly one JSON document.
	tableW := cfg.Stdout
	if cfg.JSONPath == "-" {
		tableW = cfg.Stderr
	}

	report = obs.NewRunReport("crbench", cfg.Seed, cfg.Trials)
	experiments.TakeBatchThroughput() // discard any stale tally
	experiments.TakeSwarmThroughput()
	experiments.TakeEngineProfile()
	start := time.Now()
	for i, name := range names {
		printer.setLabel(name)
		experiments.SetActiveExperiment(strings.ToLower(name))
		t0 := time.Now()
		out, err := selected[i](cfg.Trials, cfg.Seed)
		experiments.SetActiveExperiment("")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		printer.clear()
		er := obs.ExperimentReport{
			Name:        strings.ToLower(name),
			WallSeconds: time.Since(t0).Seconds(),
			OutputBytes: len(out),
		}
		if cirs, secs := experiments.TakeBatchThroughput(); cirs > 0 && secs > 0 {
			er.CIRsPerSecond = float64(cirs) / secs
		}
		if events, rounds, secs := experiments.TakeSwarmThroughput(); events > 0 && secs > 0 {
			er.EventsPerSecond = float64(events) / secs
			er.RoundsPerSecond = float64(rounds) / secs
		}
		if prof := experiments.TakeEngineProfile(); prof != nil {
			er.EngineParallelEfficiency = prof.ParallelEfficiency
			er.EngineBarrierStallPct = prof.BarrierStallPct
			er.EngineDrainPct = prof.DrainPct
			er.EngineCriticalShard = prof.CriticalShard
			er.EngineCriticalShardPct = 100 * prof.CriticalShardShare
		}
		report.Experiments = append(report.Experiments, er)
		fmt.Fprint(tableW, out)
		fmt.Fprintln(tableW)
	}
	report.Finish(reg.Snapshot(), time.Since(start))
	if err := report.Validate(); err != nil {
		return nil, err
	}
	switch cfg.JSONPath {
	case "":
	case "-":
		if err := report.Encode(cfg.Stdout); err != nil {
			return nil, fmt.Errorf("writing report: %w", err)
		}
	default:
		if err := report.WriteFile(cfg.JSONPath); err != nil {
			return nil, fmt.Errorf("writing report: %w", err)
		}
	}
	return report, nil
}

// progressPrinter renders experiments.Progress updates as a single
// rewritten stderr line, rate-limited so tight trial loops don't flood the
// terminal. It is safe for concurrent use (campaign workers all report).
type progressPrinter struct {
	w       io.Writer
	enabled bool

	mu    sync.Mutex
	label string
	last  time.Time
	dirty bool
}

func newProgressPrinter(w io.Writer, enabled bool) *progressPrinter {
	return &progressPrinter{w: w, enabled: enabled}
}

// setLabel names the experiment shown alongside subsequent updates.
func (p *progressPrinter) setLabel(name string) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	p.label = name
	p.last = time.Time{}
	p.mu.Unlock()
}

// update implements experiments.ProgressFunc.
func (p *progressPrinter) update(pr experiments.Progress) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// At most ~5 updates/s, but always show the final trial so the bar
	// ends at 100%.
	if pr.Done < pr.Total && time.Since(p.last) < 200*time.Millisecond {
		return
	}
	p.last = time.Now()
	p.dirty = true
	eta := ""
	if pr.Remaining > 0 {
		eta = fmt.Sprintf(" eta %s", pr.Remaining.Round(time.Second))
	}
	percent := 100.0
	if pr.Total > 0 {
		percent = 100 * float64(pr.Done) / float64(pr.Total)
	}
	fmt.Fprintf(p.w, "\r\x1b[2K%s: %d/%d trials (%.0f%%)%s",
		p.label, pr.Done, pr.Total, percent, eta)
}

// clear ends the progress line before regular output resumes.
func (p *progressPrinter) clear() {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty {
		fmt.Fprint(p.w, "\r\x1b[2K")
		p.dirty = false
	}
}
