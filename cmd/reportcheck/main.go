// Command reportcheck validates a crbench -json run report: the file must
// parse, satisfy the schema's structural invariants, and carry non-zero
// values for the key fields a real run always produces. CI runs it against
// a smoke-test report so a silently broken instrumentation path fails the
// build instead of shipping empty reports.
//
// Usage:
//
//	reportcheck report.json [report2.json ...]
//
// Exit status 0 means every report is well-formed; any defect prints a
// diagnostic and exits 1.
package main

import (
	"fmt"
	"os"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: reportcheck report.json [report2.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

// check applies the structural Validate pass plus liveness checks: a run
// that executed any simulation must have put frames on the air, timed its
// trials, and taken non-zero wall time.
func check(path string) error {
	r, err := obs.ReadReportFile(path)
	if err != nil {
		return err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if r.WallSeconds <= 0 {
		return fmt.Errorf("wall_seconds is %g, want > 0", r.WallSeconds)
	}
	if r.GoVersion == "" || r.NumCPU <= 0 {
		return fmt.Errorf("host fields missing (go_version %q, num_cpu %d)", r.GoVersion, r.NumCPU)
	}
	// Liveness: every simulation-backed experiment transmits frames and
	// times trials; a report with neither means the instrumentation was
	// never wired through.
	if frames := r.Metrics.CounterValue("sim.frames_on_air"); frames <= 0 {
		return fmt.Errorf("sim.frames_on_air is %d, want > 0", frames)
	}
	if trials := r.Metrics.CounterValue("experiments.trials"); trials <= 0 {
		return fmt.Errorf("experiments.trials is %d, want > 0", trials)
	}
	h, ok := r.Metrics.HistogramByName("experiments.trial_seconds")
	if !ok || h.Count == 0 {
		return fmt.Errorf("experiments.trial_seconds histogram missing or empty")
	}
	if h.Sum <= 0 {
		return fmt.Errorf("experiments.trial_seconds sum is %g, want > 0", h.Sum)
	}
	return nil
}
