// Command reportcheck validates a crbench -json run report: the file must
// parse, satisfy the schema's structural invariants, and carry non-zero
// values for the key fields a real run always produces. CI runs it against
// a smoke-test report so a silently broken instrumentation path fails the
// build instead of shipping empty reports.
//
// Usage:
//
//	reportcheck [-require-metrics prefixes] report.json [report2.json ...]
//	reportcheck -compare old.json new.json [-max-regress factor] [-max-quality-drop pp]
//	reportcheck -require-deterministic a.json b.json [more.json ...]
//
// -require-metrics takes comma-separated metric-family name prefixes
// (e.g. "detector.,trace.") and fails any report that carries no family
// matching each prefix — the gate that catches an instrumentation path
// going silently unwired.
//
// -require-engine-profile fails any report in which no experiment carries
// the sharded-engine scaling diagnosis (engine_parallel_efficiency and
// friends, produced by the sim.EngineProfiler), or in which a diagnosis
// is out of range: efficiency must be in (0, 1.2] (a hair above 1 absorbs
// clock granularity on very short windows) and the stall/drain/critical-
// shard percentages in [0, 100]. -min-engine-efficiency adds an optional
// hard floor on parallel efficiency; it defaults to 0 (off) because
// absolute efficiency depends on the host's core count — CI containers
// are often single-CPU, where barrier stall is expected, not a defect.
//
// In -compare mode both reports are validated and the per-experiment wall
// times of the experiments common to both are compared: the run fails if
// any experiment in new.json took more than factor times (default 4) its
// old.json wall time, plus a small absolute grace so microsecond-scale
// experiments don't trip on scheduler noise. CI compares the smoke run
// against the committed BENCH_* baseline, so a detector-path performance
// regression fails the build rather than landing silently.
//
// -compare also gates detection quality: when both reports carry the
// ranging session counters (responders found vs expected), the run fails
// if the detection success rate dropped by more than -max-quality-drop
// percentage points (default 1). Reports without those counters (runs
// that never built a ranging session) skip the gate with a notice.
//
// In -require-deterministic mode every report is validated, stripped of
// its wall-time fields (obs.RunReport.StripWallTime), and re-encoded; the
// run fails unless all encodings are byte-identical to the first. Two
// crbench runs with the same seed, trials, and experiment list must agree
// on everything but wall time — CI runs the smoke experiment twice and
// feeds both reports through this gate, so a nondeterminism regression
// (an unseeded random source, map-ordered output, a wall-clock leak into
// a report field) fails the build.
//
// Exit status 0 means every report is well-formed (and, with -compare, no
// regression was found); any defect prints a diagnostic and exits 1.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

func main() {
	comparePath := flag.String("compare", "", "baseline report to compare wall times against")
	maxRegress := flag.Float64("max-regress", 4, "fail when an experiment exceeds this factor of its baseline wall time")
	maxQualityDrop := flag.Float64("max-quality-drop", 1, "fail when the detection success rate drops by more than this many percentage points")
	requireDet := flag.Bool("require-deterministic", false, "fail unless all reports are byte-identical after StripWallTime")
	requireMetrics := flag.String("require-metrics", "", "comma-separated metric-family name `prefixes` each report must carry")
	requireEngine := flag.Bool("require-engine-profile", false, "fail unless each report carries an in-range sharded-engine scaling diagnosis")
	minEfficiency := flag.Float64("min-engine-efficiency", 0, "with -require-engine-profile, fail when parallel efficiency is below this floor (0 = no floor)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: reportcheck [-require-metrics prefixes] [-require-engine-profile] report.json [report2.json ...]")
		fmt.Fprintln(os.Stderr, "       reportcheck -compare old.json new.json [-max-regress factor] [-max-quality-drop pp]")
		fmt.Fprintln(os.Stderr, "       reportcheck -require-deterministic a.json b.json [more.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *requireDet {
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "reportcheck: -require-deterministic takes at least two reports")
			os.Exit(2)
		}
		if err := requireDeterministic(args); err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *comparePath != "" {
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "reportcheck: -compare takes exactly one new report")
			os.Exit(2)
		}
		if err := compare(*comparePath, args[0], *maxRegress, *maxQualityDrop); err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	failed := false
	for _, path := range args {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		if *requireMetrics != "" {
			if err := requireFamilies(path, *requireMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
				failed = true
				continue
			}
		}
		if *requireEngine {
			if err := requireEngineProfile(path, *minEfficiency); err != nil {
				fmt.Fprintf(os.Stderr, "reportcheck: %s: %v\n", path, err)
				failed = true
				continue
			}
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

// check applies the structural Validate pass plus liveness checks: a run
// that executed any simulation must have put frames on the air, timed its
// trials, and taken non-zero wall time.
func check(path string) error {
	r, err := obs.ReadReportFile(path)
	if err != nil {
		return err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if r.WallSeconds <= 0 {
		return fmt.Errorf("wall_seconds is %g, want > 0", r.WallSeconds)
	}
	if r.GoVersion == "" || r.NumCPU <= 0 {
		return fmt.Errorf("host fields missing (go_version %q, num_cpu %d)", r.GoVersion, r.NumCPU)
	}
	// Liveness: every simulation-backed experiment transmits frames and
	// times trials; a report with neither means the instrumentation was
	// never wired through.
	if frames := r.Metrics.CounterValue("sim.frames_on_air"); frames <= 0 {
		return fmt.Errorf("sim.frames_on_air is %d, want > 0", frames)
	}
	if trials := r.Metrics.CounterValue("experiments.trials"); trials <= 0 {
		return fmt.Errorf("experiments.trials is %d, want > 0", trials)
	}
	h, ok := r.Metrics.HistogramByName("experiments.trial_seconds")
	if !ok || h.Count == 0 {
		return fmt.Errorf("experiments.trial_seconds histogram missing or empty")
	}
	if h.Sum <= 0 {
		return fmt.Errorf("experiments.trial_seconds sum is %g, want > 0", h.Sum)
	}
	return nil
}

// requireFamilies fails unless the report's metrics snapshot carries, for
// every comma-separated entry in spec, at least one metric family
// (counter, gauge, histogram, or window) whose name starts with that
// entry. CI passes the instrumentation families a campaign smoke run must
// produce (detector., trace., ...) so a silently unwired recording path —
// the metric constants exist but nothing ever records them — fails the
// build instead of shipping hollow reports.
func requireFamilies(path, spec string) error {
	r, err := obs.ReadReportFile(path)
	if err != nil {
		return err
	}
	names := make(map[string]bool)
	for _, c := range r.Metrics.Counters {
		names[c.Name] = true
	}
	for _, g := range r.Metrics.Gauges {
		names[g.Name] = true
	}
	for _, h := range r.Metrics.Histograms {
		names[h.Name] = true
	}
	for _, w := range r.Metrics.Windows {
		names[w.Name] = true
	}
	var missing []string
	for _, want := range strings.Split(spec, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for name := range names {
			if strings.HasPrefix(name, want) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("report has no metric families matching: %s", strings.Join(missing, ", "))
	}
	return nil
}

// requireEngineProfile fails unless at least one experiment carries the
// sharded-engine scaling diagnosis and every diagnosis present is
// internally sane: parallel efficiency in (0, 1.2] (the small overshoot
// absorbs clock granularity on very short windows), barrier-stall and
// bus-drain shares in [0, 100] %, and — when a critical shard is named —
// its busy-time share in (0, 100] %. minEfficiency > 0 adds a hard
// efficiency floor on top; absolute floors are host-dependent (a
// single-CPU container stalls at barriers by construction), so the
// default gate is the sanity envelope only.
func requireEngineProfile(path string, minEfficiency float64) error {
	r, err := obs.ReadReportFile(path)
	if err != nil {
		return err
	}
	profiled := 0
	for _, e := range r.Experiments {
		if e.EngineParallelEfficiency == 0 {
			continue
		}
		profiled++
		if e.EngineParallelEfficiency < 0 || e.EngineParallelEfficiency > 1.2 {
			return fmt.Errorf("experiment %q engine_parallel_efficiency %g outside (0, 1.2]",
				e.Name, e.EngineParallelEfficiency)
		}
		if e.EngineBarrierStallPct < 0 || e.EngineBarrierStallPct > 100 {
			return fmt.Errorf("experiment %q engine_barrier_stall_pct %g outside [0, 100]",
				e.Name, e.EngineBarrierStallPct)
		}
		if e.EngineDrainPct < 0 || e.EngineDrainPct > 100 {
			return fmt.Errorf("experiment %q engine_drain_pct %g outside [0, 100]",
				e.Name, e.EngineDrainPct)
		}
		if e.EngineCriticalShardPct < 0 || e.EngineCriticalShardPct > 100 {
			return fmt.Errorf("experiment %q engine_critical_shard_pct %g outside [0, 100]",
				e.Name, e.EngineCriticalShardPct)
		}
		if e.EngineParallelEfficiency < minEfficiency {
			return fmt.Errorf("experiment %q engine_parallel_efficiency %g below floor %g",
				e.Name, e.EngineParallelEfficiency, minEfficiency)
		}
		fmt.Printf("%s: engine profile %s: efficiency %.1f%%, stall %.1f%%, drain %.1f%%, critical shard %d (%.1f%%)\n",
			path, e.Name, 100*e.EngineParallelEfficiency, e.EngineBarrierStallPct,
			e.EngineDrainPct, e.EngineCriticalShard, e.EngineCriticalShardPct)
	}
	if profiled == 0 {
		return fmt.Errorf("no experiment carries an engine profile (engine_parallel_efficiency is zero everywhere)")
	}
	return nil
}

// requireDeterministic validates every report and fails unless all of
// them are byte-identical after StripWallTime: same seed, same trials,
// same experiments ⇒ same everything-but-wall-time, the repository's
// determinism contract.
func requireDeterministic(paths []string) error {
	var ref []byte
	for i, path := range paths {
		if err := check(path); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		r, err := obs.ReadReportFile(path)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := r.StripWallTime().Encode(&buf); err != nil {
			return fmt.Errorf("%s: re-encoding stripped report: %w", path, err)
		}
		if i == 0 {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			return fmt.Errorf("%s is not deterministic against %s: stripped reports differ at %s",
				path, paths[0], firstDiff(ref, buf.Bytes()))
		}
	}
	fmt.Printf("%d reports byte-identical after StripWallTime\n", len(paths))
	return nil
}

// firstDiff locates the first differing line of two indented JSON
// encodings, so a determinism failure names the offending field instead
// of dumping both reports.
func firstDiff(a, b []byte) string {
	al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, strings.TrimSpace(al[i]), strings.TrimSpace(bl[i]))
		}
	}
	return fmt.Sprintf("line %d: encodings are prefixes of each other (%d vs %d lines)",
		min(len(al), len(bl))+1, len(al), len(bl))
}

// regressGraceSeconds is added to the scaled baseline before comparing, so
// experiments whose baseline wall time is within scheduler-noise scale
// cannot fail on jitter alone.
const regressGraceSeconds = 0.05

// compare validates both reports and fails if any experiment present in
// both regressed beyond maxRegress times its baseline wall time, or if
// the detection success rate dropped beyond maxQualityDrop percentage
// points.
func compare(oldPath, newPath string, maxRegress, maxQualityDrop float64) error {
	if maxRegress <= 0 {
		return fmt.Errorf("-max-regress must be positive, got %g", maxRegress)
	}
	if maxQualityDrop < 0 {
		return fmt.Errorf("-max-quality-drop must be non-negative, got %g", maxQualityDrop)
	}
	for _, path := range []string{oldPath, newPath} {
		if err := check(path); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	oldR, err := obs.ReadReportFile(oldPath)
	if err != nil {
		return err
	}
	newR, err := obs.ReadReportFile(newPath)
	if err != nil {
		return err
	}
	baseline := make(map[string]float64, len(oldR.Experiments))
	for _, e := range oldR.Experiments {
		baseline[e.Name] = e.WallSeconds
	}
	compared, failed := 0, 0
	for _, e := range newR.Experiments {
		old, ok := baseline[e.Name]
		if !ok {
			continue
		}
		compared++
		// A zero (or garbage-negative) baseline cannot scale into a
		// meaningful limit — the old factor-of-baseline math degenerated
		// to gating everything against the bare grace term. Skip with a
		// notice instead of failing on an undefined ratio.
		if old <= 0 {
			fmt.Printf("%-10s baseline wall time %gs; wall gate skipped\n", e.Name, old)
			continue
		}
		limit := old*maxRegress + regressGraceSeconds
		status := "ok"
		if e.WallSeconds > limit {
			status = fmt.Sprintf("REGRESSION (limit %.3fs)", limit)
			failed++
		}
		fmt.Printf("%-10s %8.3fs -> %8.3fs (%.2fx) %s\n",
			e.Name, old, e.WallSeconds, ratio(e.WallSeconds, old), status)
	}
	if compared == 0 {
		return fmt.Errorf("no common experiments between %s and %s", oldPath, newPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d experiments regressed beyond %gx", failed, compared, maxRegress)
	}
	if err := compareQuality(oldR, newR, maxQualityDrop); err != nil {
		return err
	}
	if err := compareThroughput(oldR, newR, maxRegress); err != nil {
		return err
	}
	fmt.Printf("%s vs %s: %d experiments within %gx\n", newPath, oldPath, compared, maxRegress)
	return nil
}

// compareThroughput gates measured throughputs per experiment — the
// batch-detection CIR rate and the sharded-engine event rate: when both
// reports carry a measurement for an experiment, the comparison fails if
// the new rate fell below baseline/maxRegress. An experiment where only
// one side measured throughput prints a notice and skips the gate — that
// is a changed experiment list or a newly added measurement, not a
// regression signal.
func compareThroughput(oldR, newR *obs.RunReport, maxRegress float64) error {
	rates := []struct {
		unit  string
		label string
		get   func(obs.ExperimentReport) float64
	}{
		{"CIRs/s", "batch", func(e obs.ExperimentReport) float64 { return e.CIRsPerSecond }},
		{"events/s", "swarm", func(e obs.ExperimentReport) float64 { return e.EventsPerSecond }},
	}
	var firstErr error
	for _, r := range rates {
		baseline := make(map[string]float64, len(oldR.Experiments))
		for _, e := range oldR.Experiments {
			baseline[e.Name] = r.get(e)
		}
		failed := 0
		for _, e := range newR.Experiments {
			old, ok := baseline[e.Name]
			if !ok {
				continue
			}
			rate := r.get(e)
			switch {
			case old > 0 && rate > 0:
				floor := old / maxRegress
				status := "ok"
				if rate < floor {
					status = fmt.Sprintf("REGRESSION (floor %.1f %s)", floor, r.unit)
					failed++
				}
				fmt.Printf("throughput %-10s %8.1f -> %8.1f %s (%.2fx) %s\n",
					e.Name, old, rate, r.unit, ratio(rate, old), status)
			case old > 0:
				fmt.Printf("throughput %-10s baseline %.1f %s but new report has no measurement; gate skipped\n",
					e.Name, old, r.unit)
			case rate > 0:
				fmt.Printf("throughput %-10s %.1f %s with no baseline measurement; gate skipped\n",
					e.Name, rate, r.unit)
			}
		}
		if failed > 0 && firstErr == nil {
			firstErr = fmt.Errorf("%d experiments regressed %s throughput beyond %gx", failed, r.label, maxRegress)
		}
	}
	return firstErr
}

// successRate returns the detection success rate in percent (responders
// found / responders expected) carried by a report's ranging session
// counters, or false when the run never recorded them.
func successRate(r *obs.RunReport) (float64, bool) {
	expected := r.Metrics.CounterValue(ranging.MetricRespondersExpected)
	if expected <= 0 {
		return 0, false
	}
	found := r.Metrics.CounterValue(ranging.MetricRespondersFound)
	return 100 * float64(found) / float64(expected), true
}

// compareQuality gates the detection success rate: a drop beyond
// maxQualityDrop percentage points fails the comparison. Reports without
// the ranging counters skip the gate (sec5/campaign-style runs never
// build a ranging session), as does a disagreement where only one side
// has them — a changed experiment list, not a quality signal.
func compareQuality(oldR, newR *obs.RunReport, maxQualityDrop float64) error {
	oldRate, oldOK := successRate(oldR)
	newRate, newOK := successRate(newR)
	if !oldOK || !newOK {
		fmt.Printf("quality: ranging counters absent (baseline %v, new %v); gate skipped\n", oldOK, newOK)
		return nil
	}
	drop := oldRate - newRate
	if drop > maxQualityDrop {
		return fmt.Errorf("detection success rate dropped %.2f pp (%.2f%% -> %.2f%%), limit %g pp",
			drop, oldRate, newRate, maxQualityDrop)
	}
	fmt.Printf("quality: detection success rate %.2f%% -> %.2f%% (limit -%g pp)\n",
		oldRate, newRate, maxQualityDrop)
	return nil
}

// ratio guards the displayed new/old quotient against a zero baseline.
func ratio(new, old float64) float64 {
	if old <= 0 {
		return 0
	}
	return new / old
}
