package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/uwb-sim/concurrent-ranging/internal/obs"
	"github.com/uwb-sim/concurrent-ranging/ranging"
)

// liveReport builds a report shaped like a real crbench smoke run.
func liveReport() *obs.RunReport {
	reg := obs.NewRegistry()
	reg.Count("sim.frames_on_air", 42)
	reg.Count("experiments.trials", 15)
	reg.Observe("experiments.trial_seconds", 0.002)
	r := obs.NewRunReport("crbench", 1, 3)
	r.Experiments = []obs.ExperimentReport{{Name: "sec5", WallSeconds: 0.1, OutputBytes: 100}}
	r.Finish(reg.Snapshot(), 120*time.Millisecond)
	return r
}

func writeReport(t *testing.T, r *obs.RunReport) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAcceptsLiveReport(t *testing.T) {
	if err := check(writeReport(t, liveReport())); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsDefects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*obs.RunReport)
		want   string
	}{
		{"no experiments", func(r *obs.RunReport) { r.Experiments = nil }, "no experiments"},
		{"zero wall time", func(r *obs.RunReport) { r.WallSeconds = 0 }, "wall_seconds"},
		{"no frames", func(r *obs.RunReport) {
			m := r.Metrics.Counters[:0]
			for _, c := range r.Metrics.Counters {
				if c.Name != "sim.frames_on_air" {
					m = append(m, c)
				}
			}
			r.Metrics.Counters = m
		}, "sim.frames_on_air"},
		{"no trial timing", func(r *obs.RunReport) { r.Metrics.Histograms = nil }, "trial_seconds"},
		{"wrong schema", func(r *obs.RunReport) { r.Schema = 99 }, "schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := liveReport()
			tc.mutate(r)
			err := check(writeReport(t, r))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestCompareWallTimes(t *testing.T) {
	base := liveReport()
	base.Experiments = []obs.ExperimentReport{
		{Name: "sec5", WallSeconds: 0.1, OutputBytes: 100},
		{Name: "sec6", WallSeconds: 0.2, OutputBytes: 100},
	}
	oldPath := writeReport(t, base)

	within := liveReport()
	within.Experiments = []obs.ExperimentReport{
		{Name: "sec5", WallSeconds: 0.3, OutputBytes: 100},  // 3x < 4x
		{Name: "fig4", WallSeconds: 99.0, OutputBytes: 100}, // not in baseline: ignored
	}
	if err := compare(oldPath, writeReport(t, within), 4, 1); err != nil {
		t.Fatalf("3x slowdown within 4x limit rejected: %v", err)
	}

	regressed := liveReport()
	regressed.Experiments = []obs.ExperimentReport{
		{Name: "sec6", WallSeconds: 1.5, OutputBytes: 100}, // 7.5x > 4x (plus grace)
	}
	err := compare(oldPath, writeReport(t, regressed), 4, 1)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("7.5x regression accepted: %v", err)
	}

	disjoint := liveReport()
	disjoint.Experiments = []obs.ExperimentReport{{Name: "fig8", WallSeconds: 0.1, OutputBytes: 1}}
	if err := compare(oldPath, writeReport(t, disjoint), 4, 1); err == nil {
		t.Fatal("reports with no common experiments accepted")
	}

	if err := compare(oldPath, oldPath, 0, 1); err == nil {
		t.Fatal("non-positive -max-regress accepted")
	}
	// A structurally broken report must fail compare too.
	broken := liveReport()
	broken.Experiments = nil
	if err := compare(oldPath, writeReport(t, broken), 4, 1); err == nil {
		t.Fatal("invalid new report accepted by compare")
	}
}

func TestCompareSkipsZeroWallBaseline(t *testing.T) {
	// A baseline experiment whose wall time never got recorded (0) cannot
	// scale into a limit; the wall gate must skip it with a notice instead
	// of gating the new run against bare grace (the old division-by-zero
	// shaped failure).
	base := liveReport()
	base.Experiments = []obs.ExperimentReport{
		{Name: "sec5", WallSeconds: 0, OutputBytes: 100},
		{Name: "sec6", WallSeconds: 0.1, OutputBytes: 100},
	}
	next := liveReport()
	next.Experiments = []obs.ExperimentReport{
		{Name: "sec5", WallSeconds: 30, OutputBytes: 100}, // would trip any scaled limit
		{Name: "sec6", WallSeconds: 0.2, OutputBytes: 100},
	}
	if err := compare(writeReport(t, base), writeReport(t, next), 4, 1); err != nil {
		t.Fatalf("zero-wall baseline not skipped: %v", err)
	}
}

func TestCompareThroughputGate(t *testing.T) {
	withRate := func(rate float64) *obs.RunReport {
		r := liveReport()
		r.Experiments = []obs.ExperimentReport{
			{Name: "fullbank", WallSeconds: 0.1, OutputBytes: 100, CIRsPerSecond: rate},
		}
		return r
	}
	cases := []struct {
		name     string
		old, new *obs.RunReport
		wantErr  string // "" = pass
	}{
		{"within limit", withRate(100), withRate(30), ""}, // 100/4 = 25 floor
		{"regression fails", withRate(100), withRate(20), "batch throughput"},
		{"improvement passes", withRate(100), withRate(500), ""},
		{"skipped without baseline measurement", withRate(0), withRate(100), ""},
		{"skipped without new measurement", withRate(100), withRate(0), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compare(writeReport(t, tc.old), writeReport(t, tc.new), 4, 1)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("compare failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompareGraceAbsorbsTinyBaselines(t *testing.T) {
	base := liveReport()
	base.Experiments = []obs.ExperimentReport{{Name: "sec5", WallSeconds: 0.001, OutputBytes: 100}}
	fast := liveReport()
	fast.Experiments = []obs.ExperimentReport{{Name: "sec5", WallSeconds: 0.03, OutputBytes: 100}}
	// 30x on a 1 ms baseline is scheduler noise, absorbed by the grace.
	if err := compare(writeReport(t, base), writeReport(t, fast), 4, 1); err != nil {
		t.Fatalf("noise-scale wobble rejected: %v", err)
	}
}

// qualityReport is a liveReport carrying the ranging session counters the
// quality gate reads.
func qualityReport(found, expected int64) *obs.RunReport {
	reg := obs.NewRegistry()
	reg.Count("sim.frames_on_air", 42)
	reg.Count("experiments.trials", 15)
	reg.Observe("experiments.trial_seconds", 0.002)
	if expected > 0 {
		reg.Count(ranging.MetricRespondersExpected, expected)
	}
	if found > 0 {
		reg.Count(ranging.MetricRespondersFound, found)
	}
	r := obs.NewRunReport("crbench", 1, 3)
	r.Experiments = []obs.ExperimentReport{{Name: "sec5", WallSeconds: 0.1, OutputBytes: 100}}
	r.Finish(reg.Snapshot(), 120*time.Millisecond)
	return r
}

func TestCompareQualityGate(t *testing.T) {
	cases := []struct {
		name     string
		old, new *obs.RunReport
		maxDrop  float64
		wantErr  string // "" = pass
	}{
		{
			name: "within limit",
			old:  qualityReport(99, 100), new: qualityReport(985, 1000),
			maxDrop: 1,
		},
		{
			name: "drop beyond limit fails",
			old:  qualityReport(99, 100), new: qualityReport(95, 100),
			maxDrop: 1, wantErr: "success rate dropped",
		},
		{
			name: "improvement passes",
			old:  qualityReport(90, 100), new: qualityReport(99, 100),
			maxDrop: 1,
		},
		{
			name: "gate skipped when baseline lacks counters",
			old:  qualityReport(0, 0), new: qualityReport(50, 100),
			maxDrop: 1,
		},
		{
			name: "gate skipped when new report lacks counters",
			old:  qualityReport(99, 100), new: qualityReport(0, 0),
			maxDrop: 1,
		},
		{
			name: "zero tolerance flags any drop",
			old:  qualityReport(1000, 1000), new: qualityReport(999, 1000),
			maxDrop: 0, wantErr: "success rate dropped",
		},
		{
			name: "negative tolerance rejected",
			old:  qualityReport(99, 100), new: qualityReport(99, 100),
			maxDrop: -1, wantErr: "max-quality-drop",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compare(writeReport(t, tc.old), writeReport(t, tc.new), 4, tc.maxDrop)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("compare failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestRequireDeterministic(t *testing.T) {
	// Two reports from "runs" differing only in wall time, start time,
	// runtime stats, and *_seconds metrics: deterministic.
	a := liveReport()
	b := liveReport()
	b.WallSeconds = 9.9
	b.StartTime = "2001-01-01T00:00:00Z"
	b.Runtime.TotalAllocBytes += 1 << 20
	b.Experiments[0].WallSeconds = 7.7
	for i := range b.Metrics.Histograms {
		if strings.HasSuffix(b.Metrics.Histograms[i].Name, obs.WallTimeMetricSuffix) {
			b.Metrics.Histograms[i].Sum *= 3
		}
	}
	if err := requireDeterministic([]string{writeReport(t, a), writeReport(t, b)}); err != nil {
		t.Fatalf("wall-time-only differences flagged as nondeterminism: %v", err)
	}

	// A deterministic field differing between runs must fail.
	c := liveReport()
	c.Experiments[0].OutputBytes = 101
	err := requireDeterministic([]string{writeReport(t, a), writeReport(t, c)})
	if err == nil || !strings.Contains(err.Error(), "not deterministic") {
		t.Fatalf("output_bytes drift accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "output_bytes") {
		t.Fatalf("diff does not name the offending field: %v", err)
	}

	// A metric value drift (the classic unseeded-randomness symptom) must
	// fail too.
	d := liveReport()
	d.Metrics.Counters[0].Value++
	if err := requireDeterministic([]string{writeReport(t, a), writeReport(t, d)}); err == nil {
		t.Fatal("counter drift accepted")
	}

	// Invalid reports are rejected before comparison.
	broken := liveReport()
	broken.Experiments = nil
	if err := requireDeterministic([]string{writeReport(t, a), writeReport(t, broken)}); err == nil {
		t.Fatal("invalid report accepted by -require-deterministic")
	}
}

func TestRequireFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Watch("experiments.trials", obs.WindowConfig{})
	reg.Count("sim.frames_on_air", 42)
	reg.Count("experiments.trials", 15)
	reg.Observe("experiments.trial_seconds", 0.002)
	reg.Count("detector.detect_calls", 10)
	reg.CounterVec("trace.spans", "name").With("session.round").Add(5)
	r := obs.NewRunReport("crbench", 1, 3)
	r.Experiments = []obs.ExperimentReport{{Name: "sec5", WallSeconds: 0.1, OutputBytes: 100}}
	r.Finish(reg.Snapshot(), 120*time.Millisecond)
	path := writeReport(t, r)

	// Counter, labeled-counter, histogram, and window families all count,
	// by exact name or prefix; empty entries are ignored.
	if err := requireFamilies(path, "detector.,trace.,experiments.trial_seconds, ,sim."); err != nil {
		t.Fatalf("present families flagged missing: %v", err)
	}
	err := requireFamilies(path, "detector.,ranging.,dsp.")
	if err == nil {
		t.Fatal("absent families passed -require-metrics")
	}
	for _, want := range []string{"dsp.", "ranging."} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("err = %v, want mention of %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "detector.") {
		t.Fatalf("err names a present family: %v", err)
	}
	if err := requireFamilies(filepath.Join(t.TempDir(), "missing.json"), "detector."); err == nil {
		t.Fatal("missing report accepted")
	}
}

func TestRequireEngineProfile(t *testing.T) {
	profiled := func() *obs.RunReport {
		r := liveReport()
		r.Experiments[0].EngineParallelEfficiency = 0.42
		r.Experiments[0].EngineBarrierStallPct = 58
		r.Experiments[0].EngineDrainPct = 3.5
		r.Experiments[0].EngineCriticalShard = 7
		r.Experiments[0].EngineCriticalShardPct = 12
		return r
	}
	if err := requireEngineProfile(writeReport(t, profiled()), 0); err != nil {
		t.Fatalf("sane profile rejected: %v", err)
	}
	// The floor flag gates on top of the sanity envelope.
	if err := requireEngineProfile(writeReport(t, profiled()), 0.4); err != nil {
		t.Fatalf("profile above floor rejected: %v", err)
	}
	if err := requireEngineProfile(writeReport(t, profiled()), 0.5); err == nil ||
		!strings.Contains(err.Error(), "below floor") {
		t.Fatalf("err = %v, want efficiency-floor failure", err)
	}
	// An unprofiled report (all-zero engine fields) must fail the gate.
	if err := requireEngineProfile(writeReport(t, liveReport()), 0); err == nil ||
		!strings.Contains(err.Error(), "no experiment carries an engine profile") {
		t.Fatalf("err = %v, want missing-profile failure", err)
	}
	// Out-of-envelope diagnoses fail even when present.
	for name, mutate := range map[string]func(*obs.RunReport){
		"efficiency above envelope": func(r *obs.RunReport) { r.Experiments[0].EngineParallelEfficiency = 1.5 },
		"negative stall":            func(r *obs.RunReport) { r.Experiments[0].EngineBarrierStallPct = -1 },
		"drain above 100":           func(r *obs.RunReport) { r.Experiments[0].EngineDrainPct = 101 },
		"critical share above 100":  func(r *obs.RunReport) { r.Experiments[0].EngineCriticalShardPct = 120 },
	} {
		r := profiled()
		mutate(r)
		if err := requireEngineProfile(writeReport(t, r), 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := requireEngineProfile(filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Fatal("missing report accepted")
	}
}

func TestCheckRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err == nil {
		t.Fatal("garbage file passed validation")
	}
	if err := check(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file passed validation")
	}
}
