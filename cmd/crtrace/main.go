// Command crtrace analyzes detection flight-recorder traces (the JSONL
// streams crsim/crbench write with -tracefile). Its default mode joins
// every session.round span with the ground truth its begin event carries
// and classifies each measurement and each missed responder into a triage
// class — ok, missed-response, false-path, shape-misid, slot-collision,
// round-error — printing a table with per-class counts and one exemplar
// span ID, so a rare failure in a large campaign can be located and then
// replayed with -span. Traces from crsim -swarm carry swarm.round spans
// instead; those get a per-status tally (ok / slot-collision / empty)
// with exemplar span IDs appended to the triage output.
//
// Usage:
//
//	crtrace [-tol meters] trace.jsonl        triage table
//	crtrace -span 17 trace.jsonl             dump one span tree
//	crtrace -chrome out.json trace.jsonl     convert to Chrome trace format
//
// -tol is the distance tolerance (meters) for matching a measurement to a
// responder's true distance. Exit status 0 when the trace parsed (failures
// are findings, not errors); 1 on unreadable input; pass -fail to exit 1
// when any non-ok finding exists (CI sanity gates).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

func main() {
	tol := flag.Float64("tol", 1.0, "distance tolerance in meters for matching measurements to ground truth")
	spanID := flag.Uint64("span", 0, "dump the events of the span tree rooted at this span ID")
	chromeOut := flag.String("chrome", "", "write the trace in Chrome trace-event format to this file")
	failOnFindings := flag.Bool("fail", false, "exit 1 when any non-ok finding exists")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: crtrace [-tol meters] [-span id] [-chrome out.json] [-fail] trace.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *tol, *spanID, *chromeOut, *failOnFindings); err != nil {
		fmt.Fprintf(os.Stderr, "crtrace: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, tol float64, spanID uint64, chromeOut string, failOnFindings bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadEvents(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if chromeOut != "" {
		out, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(out, events); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", len(events), chromeOut)
		return nil
	}
	if spanID != 0 {
		return dumpSpan(os.Stdout, events, spanID)
	}
	t := RunTriage(events, tol)
	printTriage(os.Stdout, path, len(events), t, CollectSwarm(events))
	if failOnFindings && t.FailureCount() > 0 {
		return fmt.Errorf("%d failure findings", t.FailureCount())
	}
	return nil
}

func printTriage(w *os.File, path string, events int, t *Triage, sw *SwarmSummary) {
	fmt.Fprintf(w, "%s: %d events, %d session rounds, %d findings\n\n",
		path, events, t.Rounds, len(t.Findings))
	if len(t.Findings) == 0 {
		if sw.Rounds > 0 {
			printSwarm(w, sw)
			return
		}
		fmt.Fprintln(w, "no session.round spans found (was the trace written with -tracefile on a ranging run?)")
		return
	}
	fmt.Fprintf(w, "%-16s %6s %6s  %s\n", "class", "count", "share", "exemplar")
	for _, class := range t.Classes() {
		fs := t.ByClass(class)
		share := 100 * float64(len(fs)) / float64(len(t.Findings))
		exemplar := "-"
		if class != ClassOK {
			f := fs[0]
			exemplar = fmt.Sprintf("span %d (seed %d round %d): %s",
				f.Round.Span, f.Round.Seed, f.Round.Index, f.Detail)
		}
		fmt.Fprintf(w, "%-16s %6d %5.1f%%  %s\n", class, len(fs), share, exemplar)
	}
	fmt.Fprintf(w, "\nfailures: %d of %d findings (replay one with -span ID)\n",
		t.FailureCount(), len(t.Findings))
	if sw.Rounds > 0 {
		fmt.Fprintln(w)
		printSwarm(w, sw)
	}
}

// printSwarm renders the swarm.round status tally (crsim -swarm traces).
func printSwarm(w *os.File, sw *SwarmSummary) {
	fmt.Fprintf(w, "swarm rounds: %d sampled  (responses %d, resolved %d, slot collisions %d)\n",
		sw.Rounds, sw.Responses, sw.Resolved, sw.Collisions)
	for _, status := range sw.Statuses() {
		fmt.Fprintf(w, "  %-16s %6d  exemplar span %d\n", status, sw.ByStatus[status], sw.Exemplar[status])
	}
	if sw.Unended > 0 {
		fmt.Fprintf(w, "  %-16s %6d  (end events missing; ring buffer or truncated trace)\n", "unended", sw.Unended)
	}
}

// dumpSpan prints every event belonging to the span tree rooted at id.
func dumpSpan(w *os.File, events []trace.Event, id uint64) error {
	parent := map[uint64]uint64{}
	for _, ev := range events {
		if ev.Phase == trace.PhaseBegin {
			parent[ev.Span] = ev.Parent
		}
	}
	root := func(s uint64) uint64 {
		for depth := 0; depth < 64; depth++ {
			p, ok := parent[s]
			if !ok || p == 0 {
				return s
			}
			s = p
		}
		return s
	}
	n := 0
	for _, ev := range events {
		if root(ev.Span) != id {
			continue
		}
		n++
		name := ev.Name
		if ev.Phase == trace.PhaseEnd {
			name = "end"
		}
		fmt.Fprintf(w, "%12.6f  %s  span=%d  %-14s %v\n", ev.TS, ev.Phase, ev.Span, name, ev.Attrs)
	}
	if n == 0 {
		return fmt.Errorf("no events with root span %d (ring buffer may have evicted it)", id)
	}
	return nil
}
