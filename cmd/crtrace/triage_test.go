package main

import (
	"os"
	"testing"

	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// The committed fixture injects exactly one failure of each class across
// six handcrafted session rounds; the triage pass must classify 100% of
// them correctly (acceptance gate of the flight-recorder PR).
func TestTriageClassifiesInjectedFailures(t *testing.T) {
	f, err := os.Open("testdata/triage.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	tri := RunTriage(events, 1.0)

	if tri.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", tri.Rounds)
	}
	wantCounts := map[string]int{
		ClassOK:            3, // rounds 1-3 each range responder 0 correctly
		ClassMissed:        1,
		ClassFalsePath:     1,
		ClassShapeMisID:    1,
		ClassSlotCollision: 1,
		ClassRoundError:    1,
	}
	total := 0
	for class, want := range wantCounts {
		if got := len(tri.ByClass(class)); got != want {
			t.Errorf("class %s: %d findings, want %d: %+v", class, got, want, tri.ByClass(class))
		}
		total += want
	}
	if len(tri.Findings) != total {
		t.Errorf("total findings = %d, want %d", len(tri.Findings), total)
	}
	if got := tri.FailureCount(); got != total-wantCounts[ClassOK] {
		t.Errorf("failure count = %d, want %d", got, total-wantCounts[ClassOK])
	}
	// Each failure exemplar must point at the round that injected it.
	wantSpan := map[string]uint64{
		ClassMissed:        2,
		ClassFalsePath:     3,
		ClassShapeMisID:    4,
		ClassSlotCollision: 5,
		ClassRoundError:    6,
	}
	for class, span := range wantSpan {
		fs := tri.ByClass(class)
		if len(fs) == 0 {
			continue // already reported above
		}
		if fs[0].Round.Span != span {
			t.Errorf("class %s exemplar span = %d, want %d", class, fs[0].Round.Span, span)
		}
	}
}

// TestCollectSwarm tallies handcrafted swarm.round spans, including one
// with a missing end event (truncated trace) and JSON-shaped numeric
// attributes (float64 after a round trip through the trace file).
func TestCollectSwarm(t *testing.T) {
	events := []trace.Event{
		{Seq: 1, Span: 1, Phase: trace.PhaseBegin, Name: trace.SpanSwarmRound,
			Attrs: trace.Attrs{trace.AttrNode: 10, trace.AttrRound: 0}},
		{Seq: 2, Span: 1, Phase: trace.PhaseEnd,
			Attrs: trace.Attrs{trace.AttrStatus: "ok", trace.AttrResponses: 3,
				trace.AttrResolved: 3, trace.AttrCollisions: 0}},
		{Seq: 3, Span: 2, Phase: trace.PhaseBegin, Name: trace.SpanSwarmRound,
			Attrs: trace.Attrs{trace.AttrNode: 20, trace.AttrRound: 1}},
		{Seq: 4, Span: 2, Phase: trace.PhaseEnd,
			Attrs: trace.Attrs{trace.AttrStatus: "slot-collision",
				trace.AttrResponses: float64(4), trace.AttrResolved: float64(2),
				trace.AttrCollisions: float64(2)}},
		{Seq: 5, Span: 3, Phase: trace.PhaseBegin, Name: trace.SpanSwarmRound,
			Attrs: trace.Attrs{trace.AttrNode: 30, trace.AttrRound: 2}},
		{Seq: 6, Span: 4, Phase: trace.PhaseBegin, Name: trace.SpanSwarmRound,
			Attrs: trace.Attrs{trace.AttrNode: 40, trace.AttrRound: 3}},
		{Seq: 7, Span: 4, Phase: trace.PhaseEnd,
			Attrs: trace.Attrs{trace.AttrStatus: "empty"}},
		// An unrelated span must not count.
		{Seq: 8, Span: 5, Phase: trace.PhaseBegin, Name: trace.SpanSessionRound},
		{Seq: 9, Span: 5, Phase: trace.PhaseEnd, Attrs: trace.Attrs{trace.AttrStatus: "ok"}},
	}
	s := CollectSwarm(events)
	if s.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", s.Rounds)
	}
	if s.Unended != 1 {
		t.Errorf("unended = %d, want 1", s.Unended)
	}
	want := map[string]int{"ok": 1, "slot-collision": 1, "empty": 1}
	for status, n := range want {
		if s.ByStatus[status] != n {
			t.Errorf("status %s = %d, want %d", status, s.ByStatus[status], n)
		}
	}
	if len(s.ByStatus) != len(want) {
		t.Errorf("statuses = %v, want %v", s.ByStatus, want)
	}
	if s.Responses != 7 || s.Resolved != 5 || s.Collisions != 2 {
		t.Errorf("tallies = %d/%d/%d, want 7/5/2", s.Responses, s.Resolved, s.Collisions)
	}
	if s.Exemplar["slot-collision"] != 2 || s.Exemplar["ok"] != 1 {
		t.Errorf("exemplars = %v", s.Exemplar)
	}
	got := s.Statuses()
	if len(got) != 3 || got[0] != "empty" || got[1] != "ok" || got[2] != "slot-collision" {
		t.Errorf("statuses order = %v, want sorted", got)
	}
}

func TestClassifyTableCases(t *testing.T) {
	truth2 := []TruthEntry{
		{ID: 0, Slot: 0, Shape: 0, Dist: 5},
		{ID: 1, Slot: 1, Shape: 1, Dist: 9},
	}
	cases := []struct {
		name string
		r    Round
		tol  float64
		want map[string]int
	}{
		{
			name: "all matched",
			r: Round{Capacity: 12, Status: "ok", Truth: truth2, Meas: []MeasEntry{
				{ID: 0, Shape: 0, Dist: 5.1, TrueM: 5, HasTruth: true},
				{ID: 1, Slot: 1, Shape: 1, Dist: 8.9, TrueM: 9, HasTruth: true},
			}},
			tol:  1,
			want: map[string]int{ClassOK: 2},
		},
		{
			name: "anonymous match without identities",
			r: Round{Capacity: 1, Status: "ok", Truth: truth2, Meas: []MeasEntry{
				{ID: -1, Dist: 5.2},
				{ID: -1, Dist: 9.1},
			}},
			tol:  1,
			want: map[string]int{ClassOK: 2},
		},
		{
			name: "anonymous false path",
			r: Round{Capacity: 1, Status: "ok", Truth: truth2[:1], Meas: []MeasEntry{
				{ID: -1, Dist: 5.0},
				{ID: -1, Dist: 20.0},
			}},
			tol:  1,
			want: map[string]int{ClassOK: 1, ClassFalsePath: 1},
		},
		{
			name: "responder out of tolerance counts missed plus false path",
			r: Round{Capacity: 12, Status: "ok", Truth: truth2[:1], Meas: []MeasEntry{
				{ID: 0, Shape: 0, Dist: 9.5, TrueM: 5, HasTruth: true},
			}},
			tol:  1,
			want: map[string]int{ClassFalsePath: 1, ClassMissed: 1},
		},
		{
			name: "error round",
			r:    Round{Status: "error", Err: "boom", Ended: true, Truth: truth2},
			tol:  1,
			want: map[string]int{ClassRoundError: 1},
		},
		{
			name: "truncated trace counts as round error",
			r:    Round{Truth: truth2},
			tol:  1,
			want: map[string]int{ClassRoundError: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := map[string]int{}
			for _, f := range classify(&tc.r, tc.tol) {
				got[f.Class]++
			}
			if len(got) != len(tc.want) {
				t.Fatalf("classes = %v, want %v", got, tc.want)
			}
			for class, n := range tc.want {
				if got[class] != n {
					t.Errorf("class %s = %d, want %d", class, got[class], n)
				}
			}
		})
	}
}
