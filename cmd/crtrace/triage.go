package main

import (
	"fmt"
	"math"
	"sort"

	"github.com/uwb-sim/concurrent-ranging/internal/obs/trace"
)

// Failure classes of a concurrent-ranging round, in display order.
const (
	ClassOK            = "ok"
	ClassMissed        = "missed-response"
	ClassFalsePath     = "false-path"
	ClassShapeMisID    = "shape-misid"
	ClassSlotCollision = "slot-collision"
	ClassRoundError    = "round-error"
)

// classOrder fixes the triage table's row order.
var classOrder = []string{
	ClassOK, ClassMissed, ClassFalsePath, ClassShapeMisID, ClassSlotCollision, ClassRoundError,
}

// TruthEntry is one responder's ground truth from a session.round begin
// event.
type TruthEntry struct {
	ID, Slot, Shape int
	Dist            float64
}

// MeasEntry is one resolved measurement from a session.round end event.
type MeasEntry struct {
	ID, Slot, Shape int
	Dist, TrueM     float64
	HasTruth        bool
	Anchor          bool
}

// Round is one reassembled session.round span.
type Round struct {
	Span     uint64
	Seed     uint64
	Index    int
	Capacity int
	Truth    []TruthEntry
	Meas     []MeasEntry
	Status   string
	Err      string
	Ended    bool
}

// Finding is one classified outcome: per measurement, per missed truth,
// or per errored round.
type Finding struct {
	Class  string
	Round  *Round
	Detail string
}

// collectRounds reassembles session.round spans from a trace event stream.
func collectRounds(events []trace.Event) []*Round {
	byID := map[uint64]*Round{}
	var order []uint64
	for _, ev := range events {
		switch {
		case ev.Phase == trace.PhaseBegin && ev.Name == trace.SpanSessionRound:
			r := &Round{
				Span:     ev.Span,
				Seed:     attrUint(ev.Attrs[trace.AttrSeed]),
				Index:    attrInt(ev.Attrs[trace.AttrRound]),
				Capacity: attrInt(ev.Attrs[trace.AttrCapacity]),
			}
			if list, ok := ev.Attrs[trace.AttrTruth].([]any); ok {
				for _, entry := range list {
					m, ok := entry.(map[string]any)
					if !ok {
						continue
					}
					r.Truth = append(r.Truth, TruthEntry{
						ID:    attrInt(m[trace.AttrID]),
						Slot:  attrInt(m[trace.AttrSlot]),
						Shape: attrInt(m[trace.AttrShape]),
						Dist:  attrFloat(m[trace.AttrDistM]),
					})
				}
			}
			byID[ev.Span] = r
			order = append(order, ev.Span)
		case ev.Phase == trace.PhaseEnd:
			r, ok := byID[ev.Span]
			if !ok {
				continue
			}
			r.Ended = true
			r.Status, _ = ev.Attrs[trace.AttrStatus].(string)
			r.Err, _ = ev.Attrs[trace.AttrError].(string)
			if list, ok := ev.Attrs[trace.AttrMeasurements].([]any); ok {
				for _, entry := range list {
					m, ok := entry.(map[string]any)
					if !ok {
						continue
					}
					me := MeasEntry{
						ID:    attrInt(m[trace.AttrID]),
						Slot:  attrInt(m[trace.AttrSlot]),
						Shape: attrInt(m[trace.AttrShape]),
						Dist:  attrFloat(m[trace.AttrDistM]),
						TrueM: attrFloat(m[trace.AttrTrueM]),
					}
					me.HasTruth, _ = m[trace.AttrHasTruth].(bool)
					me.Anchor, _ = m[trace.AttrAnchor].(bool)
					r.Meas = append(r.Meas, me)
				}
			}
		}
	}
	rounds := make([]*Round, 0, len(order))
	for _, id := range order {
		rounds = append(rounds, byID[id])
	}
	return rounds
}

// classify joins one round's measurements with its ground truth within the
// distance tolerance tol (meters) and returns one finding per measurement
// plus one per missed responder.
//
//   - ok: the measurement matches its responder's true distance (and, in
//     identified mode, the right pulse shape).
//   - shape-misid: a real path was found but decoded with the wrong pulse
//     shape, so it was attributed to the wrong identity.
//   - slot-collision: a real path with the right shape resolved to the
//     wrong responder — the RPM slot arithmetic collided.
//   - false-path: no responder's true distance is near the measurement;
//     the detector extracted a spurious peak.
//   - missed-response: a responder with ground truth produced no
//     measurement at all.
//   - round-error: the round failed outright (e.g. decode failure).
func classify(r *Round, tol float64) []Finding {
	if r.Status != "ok" {
		detail := r.Err
		if !r.Ended {
			detail = "round span never ended (truncated trace)"
		}
		return []Finding{{Class: ClassRoundError, Round: r, Detail: detail}}
	}
	var out []Finding
	matched := make([]bool, len(r.Truth))
	for _, m := range r.Meas {
		// Identified-mode direct hit: the resolver already joined the
		// measurement to its responder's truth.
		if m.HasTruth && math.Abs(m.Dist-m.TrueM) <= tol {
			if ti := truthByID(r.Truth, m.ID); ti >= 0 {
				matched[ti] = true
			} else if r.Capacity == 1 {
				// Anonymous anchor measurement: credit the nearest truth.
				if ti := nearestTruth(r.Truth, m.Dist, tol); ti >= 0 {
					matched[ti] = true
				}
			}
			out = append(out, Finding{Class: ClassOK, Round: r,
				Detail: fmt.Sprintf("id %d at %.2f m", m.ID, m.Dist)})
			continue
		}
		// Anonymous mode carries no identities: any truth within
		// tolerance makes the measurement good.
		if r.Capacity == 1 {
			if ti := nearestTruth(r.Truth, m.Dist, tol); ti >= 0 {
				matched[ti] = true
				out = append(out, Finding{Class: ClassOK, Round: r,
					Detail: fmt.Sprintf("anonymous path at %.2f m", m.Dist)})
				continue
			}
			out = append(out, Finding{Class: ClassFalsePath, Round: r,
				Detail: fmt.Sprintf("anonymous path at %.2f m matches no responder", m.Dist)})
			continue
		}
		// Identified mode, no direct hit: find the real path this
		// measurement most plausibly came from.
		ti := nearestTruth(r.Truth, m.Dist, tol)
		if ti < 0 {
			out = append(out, Finding{Class: ClassFalsePath, Round: r,
				Detail: fmt.Sprintf("id %d at %.2f m matches no responder", m.ID, m.Dist)})
			continue
		}
		tr := r.Truth[ti]
		matched[ti] = true
		if m.Shape != tr.Shape {
			out = append(out, Finding{Class: ClassShapeMisID, Round: r,
				Detail: fmt.Sprintf("path of id %d (shape %d) decoded as shape %d -> id %d",
					tr.ID, tr.Shape, m.Shape, m.ID)})
			continue
		}
		out = append(out, Finding{Class: ClassSlotCollision, Round: r,
			Detail: fmt.Sprintf("path of id %d in slot %d resolved to id %d (slot %d)",
				tr.ID, tr.Slot, m.ID, m.Slot)})
	}
	for i, tr := range r.Truth {
		if !matched[i] {
			out = append(out, Finding{Class: ClassMissed, Round: r,
				Detail: fmt.Sprintf("id %d at %.2f m not detected", tr.ID, tr.Dist)})
		}
	}
	return out
}

// truthByID returns the index of the truth entry with the given responder
// ID, or -1.
func truthByID(truth []TruthEntry, id int) int {
	for i, t := range truth {
		if t.ID == id {
			return i
		}
	}
	return -1
}

// nearestTruth returns the index of the truth entry closest in distance to
// d, or -1 when none is within tol.
func nearestTruth(truth []TruthEntry, d, tol float64) int {
	best, bestDiff := -1, tol
	for i, t := range truth {
		if diff := math.Abs(t.Dist - d); diff <= bestDiff {
			best, bestDiff = i, diff
		}
	}
	return best
}

// Triage summarizes findings per class.
type Triage struct {
	Rounds   int
	Findings []Finding
	byClass  map[string][]Finding
}

// RunTriage classifies every round of a trace.
func RunTriage(events []trace.Event, tol float64) *Triage {
	rounds := collectRounds(events)
	t := &Triage{Rounds: len(rounds), byClass: map[string][]Finding{}}
	for _, r := range rounds {
		for _, f := range classify(r, tol) {
			t.Findings = append(t.Findings, f)
			t.byClass[f.Class] = append(t.byClass[f.Class], f)
		}
	}
	return t
}

// Classes returns the classes present, in canonical order (unknown classes
// sorted last).
func (t *Triage) Classes() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range classOrder {
		if len(t.byClass[c]) > 0 {
			out = append(out, c)
			seen[c] = true
		}
	}
	var extra []string
	for c := range t.byClass {
		if !seen[c] {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// ByClass returns the findings of one class.
func (t *Triage) ByClass(class string) []Finding { return t.byClass[class] }

// FailureCount counts findings in non-ok classes.
func (t *Triage) FailureCount() int {
	return len(t.Findings) - len(t.byClass[ClassOK])
}

// SwarmSummary aggregates swarm.round spans (written by crsim -swarm with
// -tracefile). Swarm rounds carry no per-responder ground truth, so they
// get a status tally rather than a per-measurement triage.
type SwarmSummary struct {
	// Rounds is the number of swarm.round begin events seen.
	Rounds int
	// ByStatus counts ended rounds per end-status string.
	ByStatus map[string]int
	// Responses, Resolved, and Collisions are summed over ended rounds.
	Responses, Resolved, Collisions int
	// Unended counts rounds whose end event is missing (truncated trace).
	Unended int
	// Exemplar maps each status to the first span ID that ended with it.
	Exemplar map[string]uint64
}

// Statuses returns the statuses present, sorted.
func (s *SwarmSummary) Statuses() []string {
	out := make([]string, 0, len(s.ByStatus))
	for st := range s.ByStatus {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}

// CollectSwarm tallies swarm.round spans from a trace event stream.
func CollectSwarm(events []trace.Event) *SwarmSummary {
	s := &SwarmSummary{ByStatus: map[string]int{}, Exemplar: map[string]uint64{}}
	open := map[uint64]bool{}
	for _, ev := range events {
		switch {
		case ev.Phase == trace.PhaseBegin && ev.Name == trace.SpanSwarmRound:
			s.Rounds++
			open[ev.Span] = true
		case ev.Phase == trace.PhaseEnd && open[ev.Span]:
			delete(open, ev.Span)
			status, _ := ev.Attrs[trace.AttrStatus].(string)
			if status == "" {
				status = "unknown"
			}
			s.ByStatus[status]++
			if _, ok := s.Exemplar[status]; !ok {
				s.Exemplar[status] = ev.Span
			}
			s.Responses += attrInt(ev.Attrs[trace.AttrResponses])
			s.Resolved += attrInt(ev.Attrs[trace.AttrResolved])
			s.Collisions += attrInt(ev.Attrs[trace.AttrCollisions])
		}
	}
	s.Unended = len(open)
	return s
}

// attrInt reads a numeric attribute that may arrive as a Go int (in
// process) or a float64 (round-tripped through JSON).
func attrInt(v any) int {
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case uint64:
		return int(n)
	case float64:
		return int(n)
	}
	return 0
}

func attrUint(v any) uint64 {
	switch n := v.(type) {
	case uint64:
		return n
	case int:
		return uint64(n)
	case int64:
		return uint64(n)
	case float64:
		return uint64(n)
	}
	return 0
}

func attrFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	}
	return 0
}
